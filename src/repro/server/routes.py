"""HTTP routes of the service front (ASGI handlers).

Endpoints (all JSON unless noted):

* ``GET  /healthz`` — liveness (no auth).
* ``POST /jobs`` — submit a batch: ``{"benchmark": name, "variants": N,
  "deadline": seconds, "defer": bool, "name_prefix": str,
  "config": {...}}``.  Builds one job per target schema (the benchmark's
  planned target plus N rename variants), admits each through the tenant's
  quota gate, and assigns stride fair-share priorities.  ``202`` with the
  accepted names; ``429`` + ``Retry-After`` on quota refusal; ``409`` on a
  name collision.  ``config`` may set any scalar
  :class:`~repro.api.SynthesisConfig` field (type-checked whitelist).
* ``GET  /jobs?status=…`` — this tenant's jobs (indexed store query +
  live-handle overlay; an open registry sees everything).
* ``GET  /jobs/{name}`` — one job's response payload.
* ``GET  /jobs/{name}/events`` — the SSE stream (see
  :mod:`repro.server.sse`): replays persisted events after
  ``Last-Event-ID`` (or ``?after=N``), then streams live, ending after the
  ``job_settled`` frame.  Reconnecting with the last seen id is gap-free
  and duplicate-free, including across a server restart.
* ``POST /jobs/{name}/cancel`` — cooperative cancellation.
* ``POST /resume`` — adopt foreign deferred store records into the batch.

Authentication: ``X-API-Key: <key>`` or ``Authorization: Bearer <key>``;
``401`` when the key resolves to no tenant.  A key-less tenant registry
runs open (single implicit tenant, no limits).
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Callable, Optional

from repro.server.app import ClientDisconnected, ServiceFront
from repro.server.quotas import QuotaExceeded
from repro.server.sse import JOB_SETTLED_KIND, format_frame
from repro.server.tenants import Tenant

#: Idle SSE keep-alive comment interval (seconds).
SSE_PING_INTERVAL = 15.0


# ------------------------------------------------------------ ASGI plumbing
async def _read_body(receive: Callable) -> bytes:
    chunks = []
    while True:
        message = await receive()
        if message["type"] == "http.disconnect":
            return b""
        chunks.append(message.get("body", b""))
        if not message.get("more_body", False):
            return b"".join(chunks)


async def _send_json(send: Callable, status: int, payload: Any) -> None:
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    headers = [(b"content-type", b"application/json")]
    if status == 429 and isinstance(payload, dict) and "retry_after" in payload:
        headers.append(
            (b"retry-after", str(max(1, round(payload["retry_after"]))).encode())
        )
    await send({"type": "http.response.start", "status": status, "headers": headers})
    await send({"type": "http.response.body", "body": body, "more_body": False})


def _header(scope: dict, name: bytes) -> str:
    for key, value in scope.get("headers", []):
        if key == name:
            return value.decode("latin-1")
    return ""


def _query(scope: dict) -> dict[str, str]:
    out: dict[str, str] = {}
    for pair in scope.get("query_string", b"").decode("latin-1").split("&"):
        key, sep, value = pair.partition("=")
        if key:
            out[key] = value if sep else ""
    return out


def _api_key(scope: dict) -> str:
    key = _header(scope, b"x-api-key")
    if key:
        return key
    auth = _header(scope, b"authorization")
    if auth.lower().startswith("bearer "):
        return auth[7:].strip()
    return ""


# -------------------------------------------------------------- job helpers
def _apply_config(config: Any, overrides: dict) -> None:
    """Apply type-checked scalar overrides to one SynthesisConfig."""
    for key, value in overrides.items():
        if not hasattr(config, key):
            raise ValueError(f"unknown config field {key!r}")
        current = getattr(config, key)
        if isinstance(current, bool):
            ok = isinstance(value, bool)
        elif isinstance(current, int):
            ok = isinstance(value, int) and not isinstance(value, bool)
        elif isinstance(current, float):
            ok = isinstance(value, (int, float)) and not isinstance(value, bool)
        elif isinstance(current, str):
            ok = isinstance(value, str)
        else:
            raise ValueError(f"config field {key!r} is not a scalar")
        if not ok:
            raise ValueError(f"config field {key!r} expects {type(current).__name__}")
        setattr(config, key, float(value) if isinstance(current, float) else value)


def _build_jobs(front: ServiceFront, payload: dict) -> list:
    from repro.api import SynthesisConfig
    from repro.service import MigrationJob
    from repro.workloads import get_benchmark, rename_variants

    benchmark_name = payload.get("benchmark", "coachup")
    try:
        benchmark = get_benchmark(benchmark_name)
    except KeyError as error:
        raise ValueError(str(error)) from error
    variants = int(payload.get("variants", 0))
    config = SynthesisConfig()
    _apply_config(config, payload.get("config", {}))
    targets = [benchmark.target_schema]
    targets.extend(
        rename_variants(
            benchmark.target_schema, variants, base_name=f"{benchmark.name}_v2"
        )
    )
    prefix = payload.get("name_prefix", "")
    return [
        MigrationJob(
            name=f"{prefix}{benchmark.name}->{target.name}",
            source_program=benchmark.source_program,
            target_schema=target,
            config=config,
            deadline=payload.get("deadline"),
            # The planned (index-0) target is exactly the registry's: record
            # the workload so resume can re-pin against the live registry.
            workload=benchmark_name if target is benchmark.target_schema else None,
        )
        for target in targets
    ]


def _visible(front: ServiceFront, tenant: Tenant, job_tenant: str) -> bool:
    """Tenant-scoped visibility: own jobs plus untenanted ones."""
    if front.tenants.open:
        return True
    return job_tenant in ("", tenant.name)


def _job_payload(front: ServiceFront, name: str, stored) -> dict:
    """One job's response: live handle when present, else the store record."""
    handle = front.get_handle(name)
    if handle is not None:
        payload = handle.to_dict(include_program=False)
    else:
        payload = {
            key: value
            for key, value in (stored.last or {}).items()
            if key not in ("type", "spec")
        }
        payload.setdefault("job", name)
        payload.setdefault("status", stored.status)
    if stored is not None:
        if stored.tenant:
            payload.setdefault("tenant", stored.tenant)
        priority = (stored.last or {}).get("priority")
        if priority is not None:
            payload.setdefault("priority", priority)
    return payload


# ------------------------------------------------------------------ routes
async def dispatch(
    front: ServiceFront, scope: dict, receive: Callable, send: Callable
) -> None:
    method = scope["method"]
    parts = [part for part in scope["path"].split("/") if part]

    if parts == ["healthz"] and method == "GET":
        await _send_json(send, 200, {"status": "ok"})
        return

    tenant = front.authenticate(_api_key(scope))
    if tenant is None:
        await _send_json(send, 401, {"error": "unknown or missing API key"})
        return

    try:
        if parts == ["jobs"] and method == "POST":
            await _post_jobs(front, tenant, receive, send)
        elif parts == ["jobs"] and method == "GET":
            await _get_jobs(front, tenant, scope, send)
        elif len(parts) == 2 and parts[0] == "jobs" and method == "GET":
            await _get_job(front, tenant, parts[1], send)
        elif (
            len(parts) == 3
            and parts[0] == "jobs"
            and parts[2] == "events"
            and method == "GET"
        ):
            await _get_events(front, tenant, parts[1], scope, receive, send)
        elif (
            len(parts) == 3
            and parts[0] == "jobs"
            and parts[2] == "cancel"
            and method == "POST"
        ):
            await _post_cancel(front, tenant, parts[1], send)
        elif parts == ["resume"] and method == "POST":
            names = await asyncio.to_thread(front.adopt_unfinished)
            await _send_json(send, 202, {"resumed": names})
        else:
            await _send_json(send, 404, {"error": "unknown route"})
    except ClientDisconnected:
        raise
    except QuotaExceeded as error:
        await _send_json(
            send,
            429,
            {"error": error.reason, "retry_after": error.retry_after},
        )
    except ValueError as error:
        status = 409 if "already exists" in str(error) else 400
        await _send_json(send, status, {"error": str(error)})


async def _post_jobs(
    front: ServiceFront, tenant: Tenant, receive: Callable, send: Callable
) -> None:
    body = await _read_body(receive)
    try:
        payload = json.loads(body or b"{}")
    except json.JSONDecodeError as error:
        raise ValueError(f"invalid JSON body: {error}") from error
    jobs = _build_jobs(front, payload)
    if payload.get("defer"):
        # Record-only (the /resume pattern): durable deferred records,
        # outside the quota gate — nothing runs until adoption.
        for job in jobs:
            job.tenant = tenant.name
            await asyncio.to_thread(front.service.submit_deferred, job)
        await _send_json(
            send, 202, {"submitted": [job.name for job in jobs], "deferred": True}
        )
        return
    accepted = []
    for job in jobs:
        try:
            accepted.append(await asyncio.to_thread(front.submit, tenant, job))
        except QuotaExceeded as error:
            # Partial admission: everything accepted so far stays accepted
            # and runs; the refusal reports both halves.
            await _send_json(
                send,
                429,
                {
                    "error": error.reason,
                    "retry_after": error.retry_after,
                    "submitted": [entry["job"] for entry in accepted],
                },
            )
            return
    await _send_json(
        send,
        202,
        {
            "submitted": [entry["job"] for entry in accepted],
            "priorities": {entry["job"]: entry["priority"] for entry in accepted},
            "tenant": tenant.name,
            "deferred": False,
        },
    )


async def _get_jobs(
    front: ServiceFront, tenant: Tenant, scope: dict, send: Callable
) -> None:
    params = _query(scope)
    status = params.get("status") or None
    query_tenant = None if front.tenants.open else tenant.name
    if front.tenants.open and params.get("tenant"):
        query_tenant = params["tenant"]
    stored_jobs = await asyncio.to_thread(
        front.store.query_jobs, tenant=query_tenant, status=status
    )
    payloads = [
        _job_payload(front, stored.name, stored)
        for stored in stored_jobs
        if _visible(front, tenant, stored.tenant)
    ]
    await _send_json(send, 200, payloads)


async def _get_job(
    front: ServiceFront, tenant: Tenant, name: str, send: Callable
) -> None:
    stored = (await asyncio.to_thread(front.store.load_jobs)).get(name)
    if stored is None or not _visible(front, tenant, stored.tenant):
        await _send_json(send, 404, {"error": f"unknown job {name!r}"})
        return
    await _send_json(send, 200, _job_payload(front, name, stored))


async def _post_cancel(
    front: ServiceFront, tenant: Tenant, name: str, send: Callable
) -> None:
    stored = (await asyncio.to_thread(front.store.load_jobs)).get(name)
    known = stored is not None or front.get_handle(name) is not None
    if not known or (stored is not None and not _visible(front, tenant, stored.tenant)):
        await _send_json(send, 404, {"error": f"unknown job {name!r}"})
        return
    cancelled = await asyncio.to_thread(front.cancel, name)
    await _send_json(
        send, 202, {"job": name, "cancel_requested": bool(cancelled)}
    )


# --------------------------------------------------------------------- SSE
async def _get_events(
    front: ServiceFront,
    tenant: Tenant,
    name: str,
    scope: dict,
    receive: Callable,
    send: Callable,
) -> None:
    stored = (await asyncio.to_thread(front.store.load_jobs)).get(name)
    if (stored is None and front.get_handle(name) is None) or (
        stored is not None and not _visible(front, tenant, stored.tenant)
    ):
        await _send_json(send, 404, {"error": f"unknown job {name!r}"})
        return
    after = 0
    raw_after = _header(scope, b"last-event-id") or _query(scope).get("after", "")
    if raw_after:
        try:
            after = max(0, int(raw_after))
        except ValueError:
            await _send_json(send, 400, {"error": "last-event-id must be an integer"})
            return

    await send(
        {
            "type": "http.response.start",
            "status": 200,
            "headers": [
                (b"content-type", b"text/event-stream"),
                (b"cache-control", b"no-cache"),
            ],
        }
    )

    async def write(chunk: bytes, *, more: bool = True) -> None:
        await send({"type": "http.response.body", "body": chunk, "more_body": more})

    # Flush the response head right away (a quiet stream would otherwise
    # defer it to the first keep-alive ping) so clients see the stream open.
    await write(b": stream open\n\n")

    hub = front.hub
    # Subscribe BEFORE replaying history: events published during the
    # replay land in the queue and are deduplicated by seq afterwards —
    # the no-gap half of the resume contract.
    subscription = hub.subscribe(name)
    disconnected = asyncio.Event()

    async def watch_disconnect() -> None:
        while True:
            message = await receive()
            if message["type"] == "http.disconnect":
                disconnected.set()
                return

    watcher = asyncio.create_task(watch_disconnect())
    last_sent = after
    try:
        finished = await _replay(hub, name, after, write)
        last_sent = max(last_sent, finished[0])
        if finished[1]:  # history already ends with job_settled
            await write(b"", more=False)
            return
        if finished[0] == after:
            # Nothing to replay.  A client resuming at (or past) an already
            # delivered terminal frame is fully caught up on a finished
            # stream — close it instead of parking on a settled job.
            history = await asyncio.to_thread(hub.history, name, after=0)
            if (
                history
                and history[-1][1].get("kind") == JOB_SETTLED_KIND
                and history[-1][0] <= after
            ):
                await write(b"", more=False)
                return
        while not disconnected.is_set():
            getter = asyncio.ensure_future(subscription.queue.get())
            waiter = asyncio.ensure_future(disconnected.wait())
            done, pending = await asyncio.wait(
                {getter, waiter},
                timeout=SSE_PING_INTERVAL,
                return_when=asyncio.FIRST_COMPLETED,
            )
            for task in pending:
                task.cancel()
            if getter not in done:
                if disconnected.is_set():
                    return
                await write(b": ping\n\n")  # idle keep-alive
                continue
            seq, payload = getter.result()
            if seq <= last_sent:
                continue  # duplicate of the replay
            if seq > last_sent + 1:
                # The bounded bridge queue shed events (or publish raced
                # the replay): heal the gap from the store.
                healed = await _replay(hub, name, last_sent, write, upto=seq - 1)
                last_sent = max(last_sent, healed[0])
                if healed[1]:
                    await write(b"", more=False)
                    return
                if seq <= last_sent:
                    continue
            await write(format_frame(seq, payload))
            last_sent = seq
            if payload.get("kind") == JOB_SETTLED_KIND:
                await write(b"", more=False)
                return
    finally:
        watcher.cancel()
        front.hub.unsubscribe(subscription)


async def _replay(
    hub,
    name: str,
    after: int,
    write: Callable,
    *,
    upto: Optional[int] = None,
) -> tuple[int, bool]:
    """Stream persisted events with ``after < seq [<= upto]``.

    Returns ``(last sequence written — or *after* when none —, whether the
    replayed slice ended the stream with a job_settled frame)``.
    """
    events = await asyncio.to_thread(hub.history, name, after=after)
    last = after
    for seq, payload in events:
        if upto is not None and seq > upto:
            break
        await write(format_frame(seq, payload))
        last = seq
        if payload.get("kind") == JOB_SETTLED_KIND:
            return last, True
    return last, False
