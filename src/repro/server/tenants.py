"""Tenant model of the service front: API keys, weights, quotas.

A **tenant** is one paying/consuming identity: requests authenticate with
an API key (``X-API-Key`` or ``Authorization: Bearer``), the key resolves
to a :class:`Tenant`, and everything downstream — quota enforcement, fair
scheduling weight, job-store attribution (``StoredJob.tenant``) — hangs off
the tenant name.

The registry is deliberately static per server process (a dict built at
boot from CLI flags or a JSON file): tenant churn is an ops redeploy, not a
runtime API, which keeps the authorization surface of the front tiny.  A
registry constructed with no tenants runs **open**: every request maps to
the ``public`` tenant with default quotas — the single-user laptop case.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant admission limits (enforced in :mod:`repro.server.quotas`).

    ``max_queued`` bounds jobs admitted but not yet settled; ``max_running``
    bounds jobs concurrently dispatched into the scheduler; ``submit_rate``
    / ``burst`` parameterize the token-bucket on submissions (sustained
    submits per second, and the bucket depth that absorbs spikes).  Any
    limit set to 0 (or a rate of 0.0) means *unlimited* on that axis.
    """

    max_queued: int = 64
    max_running: int = 8
    submit_rate: float = 10.0
    burst: int = 20


#: Admission limits of the implicit tenant of an open (key-less) registry.
OPEN_QUOTA = TenantQuota(max_queued=0, max_running=0, submit_rate=0.0)


@dataclass(frozen=True)
class Tenant:
    """One resolved identity: name, fair-share weight, quota."""

    name: str
    api_key: str = ""
    #: Fair-share weight: a weight-2 tenant receives twice the dispatch
    #: share of a weight-1 tenant under contention (stride scheduling in
    #: :class:`repro.server.quotas.StridePacer`).
    weight: int = 1
    quota: TenantQuota = field(default_factory=TenantQuota)


class TenantRegistry:
    """API-key → :class:`Tenant` resolution."""

    def __init__(self, tenants: Optional[list[Tenant]] = None):
        self._by_key: dict[str, Tenant] = {}
        self._by_name: dict[str, Tenant] = {}
        for tenant in tenants or []:
            self.add(tenant)

    def add(self, tenant: Tenant) -> None:
        if tenant.name in self._by_name:
            raise ValueError(f"tenant {tenant.name!r} already registered")
        if tenant.api_key and tenant.api_key in self._by_key:
            raise ValueError(f"api key of tenant {tenant.name!r} already in use")
        self._by_name[tenant.name] = tenant
        if tenant.api_key:
            self._by_key[tenant.api_key] = tenant

    @property
    def open(self) -> bool:
        """No keyed tenants: every request is the ``public`` tenant."""
        return not self._by_key

    def resolve(self, api_key: str) -> Optional[Tenant]:
        """The tenant for *api_key*, or ``None`` (→ 401) when unknown.

        An open registry resolves every key — including none — to the
        implicit unlimited ``public`` tenant.
        """
        if self.open:
            return Tenant(name="public", quota=OPEN_QUOTA)
        return self._by_key.get(api_key)

    def tenants(self) -> list[Tenant]:
        return list(self._by_name.values())

    @classmethod
    def from_file(cls, path: str) -> "TenantRegistry":
        """Load a JSON tenant file.

        Shape::

            [{"name": "acme", "api_key": "k-acme", "weight": 2,
              "quota": {"max_queued": 100, "max_running": 4,
                        "submit_rate": 5.0, "burst": 10}}, ...]
        """
        with open(path, "r", encoding="utf-8") as handle:
            entries = json.load(handle)
        registry = cls()
        for entry in entries:
            registry.add(
                Tenant(
                    name=entry["name"],
                    api_key=entry.get("api_key", ""),
                    weight=max(1, int(entry.get("weight", 1))),
                    quota=TenantQuota(**entry.get("quota", {})),
                )
            )
        return registry

    @classmethod
    def from_specs(cls, specs: list[str]) -> "TenantRegistry":
        """Build from CLI specs ``name:key[:weight]`` (see ``__main__``)."""
        registry = cls()
        for spec in specs:
            parts = spec.split(":")
            if len(parts) < 2:
                raise ValueError(
                    f"tenant spec {spec!r} is not name:key or name:key:weight"
                )
            name, key = parts[0], parts[1]
            weight = int(parts[2]) if len(parts) > 2 else 1
            registry.add(Tenant(name=name, api_key=key, weight=max(1, weight)))
        return registry
