"""Server-sent-events bridge: sync session events → asyncio SSE streams.

The synthesis stack delivers typed session events via *synchronous*
``on_event`` callbacks on whatever thread runs the job.  The server turns
that into any number of concurrent ``GET /jobs/{id}/events`` SSE responses
through :class:`EventHub`:

* every published event gets a **per-job monotonic sequence number** and is
  persisted to the job store (``record_event``) *before* fan-out, so the
  stream is replayable: ``Last-Event-ID: N`` (or ``?after=N``) resumes
  gap-free from the store, across client reconnects and even across server
  restarts when the store survives (the hub re-seeds its counters from
  ``last_event_seq``);
* live fan-out crosses into asyncio via ``loop.call_soon_threadsafe`` into
  per-subscriber **bounded** ``asyncio.Queue``\\ s with the same
  shed-and-count backpressure discipline as
  :class:`repro.exec.channel.QueueChannel`: a consumer that stops reading
  sheds its *own* oldest events (counted on the subscription) instead of
  stalling the publishing thread or other subscribers — and because every
  event is in the store first, a shed subscriber heals the gap by
  re-reading from its last seen id.

Frame shape (one event)::

    id: 7
    event: vc_selected
    data: {"kind": "vc_selected", "index": 3, "weight": 2}

The stream ends with the synthetic ``job_settled`` event the app publishes
when a job reaches a terminal status.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import threading
from typing import Any, Optional

#: Bound of one subscriber's bridge queue (matches the exec layer's
#: DEFAULT_MAX_PENDING_EVENTS spirit at per-client scale).
DEFAULT_SUBSCRIBER_QUEUE = 256

#: The synthetic terminal SSE event kind (not a session event: the service
#: publishes it when the job's handle settles, result snapshot attached).
JOB_SETTLED_KIND = "job_settled"


def jsonable(value: Any) -> Any:
    """Best-effort JSON projection of one event field.

    Typed events may carry domain objects (an ``InvocationSequence``
    counterexample, say); the SSE stream is observability, not an
    interchange format, so non-JSON values degrade to ``repr`` strings
    rather than failing the stream.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): jsonable(item) for key, item in value.items()}
    return repr(value)


def event_payload(event: Any) -> dict:
    """Project one typed session event to its JSON payload (kind + fields)."""
    if isinstance(event, dict):
        return {str(key): jsonable(value) for key, value in event.items()}
    payload = {"kind": getattr(event, "kind", type(event).__name__)}
    if dataclasses.is_dataclass(event):
        for field in dataclasses.fields(event):
            payload[field.name] = jsonable(getattr(event, field.name))
    return payload


def format_frame(seq: int, payload: dict) -> bytes:
    """One SSE frame: ``id`` is the per-job sequence number."""
    kind = payload.get("kind", "event")
    data = json.dumps(payload, sort_keys=True)
    return f"id: {seq}\nevent: {kind}\ndata: {data}\n\n".encode("utf-8")


class Subscription:
    """One SSE client's bounded bridge queue.

    Items are ``(seq, payload)`` tuples.  ``push`` (loop thread only) sheds
    the oldest queued event when full — counting the shed on ``dropped`` —
    because a live stream must prefer fresh events; the consumer detects
    the resulting seq gap and heals it from the store.
    """

    def __init__(self, job_name: str, *, maxsize: int = DEFAULT_SUBSCRIBER_QUEUE):
        self.job_name = job_name
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=maxsize)
        self.dropped = 0

    def push(self, seq: int, payload: dict) -> None:
        while True:
            try:
                self.queue.put_nowait((seq, payload))
                return
            except asyncio.QueueFull:
                try:
                    self.queue.get_nowait()
                    self.dropped += 1
                except asyncio.QueueEmpty:  # pragma: no cover - single-threaded loop
                    pass


class EventHub:
    """Per-job event sequencing, persistence, and asyncio fan-out."""

    def __init__(self, store: Any, loop: asyncio.AbstractEventLoop):
        self._store = store
        self._loop = loop
        self._lock = threading.Lock()
        self._seqs: dict[str, int] = {}
        self._subscribers: dict[str, list[Subscription]] = {}

    # ------------------------------------------------------------- publishing
    def next_seq(self, job_name: str) -> int:
        """Allocate the next per-job sequence number (store-seeded once)."""
        with self._lock:
            seq = self._seqs.get(job_name)
            if seq is None:
                # First event after (re)boot: continue where the persisted
                # stream left off so ids stay monotonic across restarts.
                seq = self._store.last_event_seq(job_name)
            seq += 1
            self._seqs[job_name] = seq
            return seq

    def publish(self, job_name: str, event: Any) -> int:
        """Sequence, persist, then fan out one event.  Any thread.

        Persist-before-fanout is the replay guarantee: an SSE client that
        misses the live delivery (shed, disconnected, not yet subscribed)
        finds the event in the store under an id ≤ everything it sees next.
        """
        payload = event_payload(event)
        seq = self.next_seq(job_name)
        self._store.record_event(job_name, seq, payload)
        self._loop.call_soon_threadsafe(self._fanout, job_name, seq, payload)
        return seq

    def _fanout(self, job_name: str, seq: int, payload: dict) -> None:
        for subscription in self._subscribers.get(job_name, ()):  # loop thread
            subscription.push(seq, payload)

    # ------------------------------------------------------------ subscribing
    def subscribe(
        self, job_name: str, *, maxsize: int = DEFAULT_SUBSCRIBER_QUEUE
    ) -> Subscription:
        """Register a live subscriber (call from the loop thread)."""
        subscription = Subscription(job_name, maxsize=maxsize)
        self._subscribers.setdefault(job_name, []).append(subscription)
        return subscription

    def unsubscribe(self, subscription: Subscription) -> None:
        """Release one subscriber's bridge queue (loop thread)."""
        bucket = self._subscribers.get(subscription.job_name)
        if bucket is None:
            return
        try:
            bucket.remove(subscription)
        except ValueError:
            pass
        if not bucket:
            del self._subscribers[subscription.job_name]

    def subscriber_count(self, job_name: str) -> int:
        return len(self._subscribers.get(job_name, ()))

    # ---------------------------------------------------------------- history
    def history(self, job_name: str, *, after: int = 0) -> list[tuple[int, dict]]:
        """The persisted stream with ``seq > after`` (replay / gap healing)."""
        return self._store.load_events(job_name, after=after)
