"""Server CLI: ``python -m repro.server --listen HOST:PORT --store PATH``.

Boots one :class:`~repro.server.ServiceFront` (resuming any history the
store already holds) behind the stdlib asyncio HTTP adapter.  The bound
address is printed as ``listening on HOST:PORT`` for harnesses to parse
(port 0 picks a free port — the same contract as ``python -m
repro.worker --listen``).

Tenants come from ``--tenants-file tenants.json`` (see
:meth:`~repro.server.tenants.TenantRegistry.from_file`) or inline
``--tenant name:key[:weight]`` flags (default quotas); with neither, the
server runs open (one implicit unlimited tenant).
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro.server.app import ServerApp, ServiceFront, serve
from repro.server.tenants import TenantRegistry


def _parse_listen(value: str) -> tuple[str, int]:
    host, sep, port = value.rpartition(":")
    if not sep:
        host, port = "127.0.0.1", value
    return host or "127.0.0.1", int(port)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server", description=__doc__.split("\n", 1)[0]
    )
    parser.add_argument(
        "--listen",
        default="127.0.0.1:0",
        help="HOST:PORT to bind (port 0 picks a free port; default %(default)s)",
    )
    parser.add_argument(
        "--store",
        required=True,
        help="job store path/URL (JSONL by default; sqlite:PATH or *.sqlite/"
        "*.db for the indexed backend)",
    )
    parser.add_argument(
        "--tenants-file", default=None, help="JSON tenant registry file"
    )
    parser.add_argument(
        "--tenant",
        action="append",
        default=[],
        metavar="NAME:KEY[:WEIGHT]",
        help="inline tenant spec (repeatable; default quotas)",
    )
    parser.add_argument(
        "--max-workers",
        type=int,
        default=0,
        help="service worker processes (0 = inline execution; default 0)",
    )
    parser.add_argument(
        "--age-after",
        type=float,
        default=30.0,
        help="seconds a queued job waits before each anti-starvation "
        "priority boost (default %(default)s)",
    )
    parser.add_argument(
        "--no-fsync",
        action="store_true",
        help="trade store durability for append latency",
    )
    args = parser.parse_args(argv)

    host, port = _parse_listen(args.listen)
    if args.tenants_file:
        registry = TenantRegistry.from_file(args.tenants_file)
    elif args.tenant:
        registry = TenantRegistry.from_specs(args.tenant)
    else:
        registry = TenantRegistry()

    front = ServiceFront(
        args.store,
        tenants=registry,
        max_workers=args.max_workers,
        age_after=args.age_after,
        fsync=not args.no_fsync,
    )
    app = ServerApp(front)

    async def run() -> None:
        server = await serve(app, host, port)
        bound = server.sockets[0].getsockname()
        print(f"listening on {bound[0]}:{bound[1]}", flush=True)
        front.start(asyncio.get_running_loop())
        try:
            await server.serve_forever()
        except asyncio.CancelledError:  # pragma: no cover - signal teardown
            pass
        finally:
            front.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:  # pragma: no cover - interactive teardown
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
