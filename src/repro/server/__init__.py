"""``repro.server`` — the async multi-tenant service front.

An asyncio HTTP/1.1 service (stdlib only; the app itself is a minimal ASGI
callable, runnable under any ASGI server) over one
:class:`~repro.service.MigrationService`:

* **tenants & quotas** — API-key resolution, per-tenant admission limits
  (queue depth, concurrent running, token-bucket submit rate) and weighted
  fair scheduling via stride priorities over the existing
  priority/deadline :class:`~repro.exec.scheduler.WorkScheduler`, with
  scheduler-level aging as the anti-starvation backstop;
* **SSE streaming** — ``GET /jobs/{id}/events`` replays the typed session
  event stream with monotonic ids and ``Last-Event-ID`` resume, bridged
  from the sync callbacks through bounded asyncio queues with
  shed-and-count backpressure;
* **durable state** — either job-store backend (JSONL or indexed SQLite,
  chosen by URL scheme); a killed server restarts on the same store with
  settled jobs served verbatim and unfinished jobs re-pinned.

Run one with ``python -m repro.server --listen 127.0.0.1:8750
--store sqlite:jobs.db`` or embed via :class:`ServerThread`.
"""

from repro.server.app import (
    ClientDisconnected,
    ServerApp,
    ServerThread,
    ServiceFront,
    serve,
)
from repro.server.quotas import QuotaExceeded, QuotaGate, StridePacer, TokenBucket
from repro.server.sse import EventHub, Subscription, event_payload, format_frame
from repro.server.tenants import Tenant, TenantQuota, TenantRegistry

__all__ = [
    "ClientDisconnected",
    "EventHub",
    "QuotaExceeded",
    "QuotaGate",
    "ServerApp",
    "ServerThread",
    "ServiceFront",
    "StridePacer",
    "Subscription",
    "Tenant",
    "TenantQuota",
    "TenantRegistry",
    "TokenBucket",
    "event_payload",
    "format_frame",
    "serve",
]
