"""The service front: multi-tenant job admission over one MigrationService.

Three layers, bottom up:

* :class:`ServiceFront` — the synchronous core.  Owns the job store (either
  backend via :func:`~repro.jobstore.open_job_store`), the
  :class:`~repro.service.MigrationService` (rebuilt with
  :meth:`~repro.service.MigrationService.resume` when the store already has
  history — settled jobs come back restored, unfinished ones re-pinned),
  the tenant registry / quota gate / stride pacer, and the **runner
  thread** that drains admitted jobs in cycles.  Each cycle dispatches at
  most ``quota.max_running`` jobs per tenant from the per-tenant backlogs,
  in stride order, and publishes a synthetic ``job_settled`` event as each
  job reaches a terminal status.

* :class:`ServerApp` — a minimal ASGI application over the front (the
  routing table lives in :mod:`repro.server.routes`).  Runnable under any
  ASGI server; no dependency beyond the interface itself.

* :func:`serve` / :class:`ServerThread` — a stdlib asyncio HTTP/1.1
  adapter for the app, so the front needs no ASGI server installed:
  keep-alive for buffered responses, ``Connection: close`` streaming for
  SSE, client-disconnect detection surfaced as both an ``http.disconnect``
  receive message and :class:`ClientDisconnected` from ``send``.
"""

from __future__ import annotations

import asyncio
import threading
import time
from typing import Any, Callable, Optional
from urllib.parse import unquote

from repro.jobstore import decode_job, open_job_store
from repro.server.quotas import QuotaExceeded, QuotaGate, StridePacer
from repro.server.sse import EventHub, JOB_SETTLED_KIND
from repro.server.tenants import Tenant, TenantRegistry
from repro.service import JobHandle, JobStatus, MigrationJob, MigrationService


class ClientDisconnected(ConnectionError):
    """The HTTP client went away mid-response (streaming send failed)."""


# ---------------------------------------------------------------- the front
class ServiceFront:
    """Synchronous multi-tenant core shared by every transport."""

    def __init__(
        self,
        store: Any,
        *,
        tenants: Optional[TenantRegistry] = None,
        max_workers: int = 0,
        default_config: Any = None,
        age_after: Optional[float] = 30.0,
        age_step: int = 1000,
        fsync: bool = True,
    ):
        self.store = open_job_store(store, fsync=fsync)
        self.tenants = tenants or TenantRegistry()
        self.quotas = QuotaGate()
        self.pacer = StridePacer()
        self.hub: Optional[EventHub] = None
        self._lock = threading.Lock()
        #: Per-tenant FIFO backlogs of admitted-but-not-dispatched
        #: :class:`MigrationJob` specs, in stride order (passes only grow
        #: per tenant).  Admission records the job as *deferred* in the
        #: store (durable, visible, crash-adoptable) and the runner turns
        #: backlog entries into real service submissions ≤ ``max_running``
        #: per tenant per cycle.
        self._backlogs: dict[str, list] = {}
        #: Quota-tracked jobs: name -> tenant name (admitted here, not yet
        #: settled; resumed jobs from a previous life are untracked).
        self._tracked: dict[str, str] = {}
        #: Jobs whose ``job_settled`` event this process already published.
        self._settled_published: set[str] = set()
        self._wake = threading.Event()
        self._stop = threading.Event()
        self._runner: Optional[threading.Thread] = None
        # Resume-or-fresh: a store with history means this front is a
        # restart — restored handles serve their recorded responses, and
        # unfinished jobs re-enter the backlog (already admitted in a
        # previous life: they bypass quota but still pace fairly).
        existing = self.store.load_jobs()
        if existing:
            self.service = MigrationService.resume(
                self.store,
                max_workers=max_workers,
                default_config=default_config,
                on_event=self._on_event,
                age_after=age_after,
                age_step=age_step,
            )
            for stored in existing.values():
                if stored.settled:
                    self._settled_published.add(stored.name)
        else:
            self.service = MigrationService(
                max_workers=max_workers,
                default_config=default_config,
                on_event=self._on_event,
                job_store=self.store,
                age_after=age_after,
                age_step=age_step,
            )

    # --------------------------------------------------------------- events
    def _on_event(self, job_name: str, event: Any) -> None:
        hub = self.hub
        if hub is not None:
            hub.publish(job_name, event)

    def _publish_settled(self, handle) -> None:
        """Publish the stream-terminating ``job_settled`` event, once.

        Once per job across *lives*: after a restart the persisted event
        log is consulted before re-publishing, so ``Last-Event-ID`` replay
        never sees a duplicate terminal frame.
        """
        name = handle.job.name
        hub = self.hub
        if hub is None or name in self._settled_published:
            return
        with self._lock:
            if name in self._settled_published:
                return
            self._settled_published.add(name)
        events = self.store.load_events(name, after=0)
        if events and events[-1][1].get("kind") == JOB_SETTLED_KIND:
            return
        hub.publish(
            name,
            {
                "kind": JOB_SETTLED_KIND,
                "job": name,
                "status": handle.status.value,
                "error": handle.error,
            },
        )

    # ----------------------------------------------------------- admission
    def authenticate(self, api_key: str) -> Optional[Tenant]:
        return self.tenants.resolve(api_key)

    def submit(self, tenant: Tenant, job: MigrationJob) -> dict:
        """Admit one job: quota gate, stride priority, backlog, wake runner.

        Raises :class:`~repro.server.quotas.QuotaExceeded` on refusal.
        Admission is durable — the job lands in the store as a *deferred*
        record immediately (a crash before dispatch leaves an adoptable
        standing) — but the real service submission happens in the runner,
        which is what makes ``max_running`` per tenant enforceable.
        Returns the accepted-job summary (name, tenant, assigned priority).
        """
        self.quotas.admit_submit(tenant)
        try:
            job.tenant = tenant.name
            job.priority = self.pacer.next_priority(tenant)
            with self._lock:
                if job.name in self._tracked or self.get_handle(job.name) is not None:
                    raise ValueError(f"job {job.name!r} already exists")
                self.service.submit_deferred(job)
                self._tracked[job.name] = tenant.name
                self._backlogs.setdefault(tenant.name, []).append(job)
        except Exception:
            self.quotas.forget(tenant.name)
            raise
        self._wake.set()
        return {"job": job.name, "tenant": tenant.name, "priority": job.priority}

    def get_handle(self, name: str):
        for handle in self.service.handles:
            if handle.job.name == name:
                return handle
        return None

    def cancel(self, name: str) -> bool:
        """Cancel one job: live handles cooperatively, backlogged ones flat."""
        handle = self.get_handle(name)
        if handle is not None:
            handle.cancel()
            self._wake.set()
            return True
        with self._lock:
            for backlog in self._backlogs.values():
                for index, job in enumerate(backlog):
                    if job.name == name:
                        del backlog[index]
                        tenant_name = self._tracked.pop(name, None)
                        cancelled = JobHandle(job)
                        cancelled.status = JobStatus.CANCELLED
                        cancelled.error = "cancelled before dispatch"
                        break
                else:
                    continue
                break
            else:
                return False
        self.store.record_settled(cancelled, include_program=False)
        if tenant_name is not None:
            self.quotas.job_settled(tenant_name, was_dispatched=False)
        self._publish_settled(cancelled)
        return True

    def adopt_unfinished(self) -> list[str]:
        """Pull *foreign* deferred store records into the batch (POST /resume).

        Deferred records written by another process over the same store
        (``submit_deferred`` from a script, say).  Our own backlogged jobs
        are also deferred standings — they are skipped here, the runner owns
        them.  Adopted jobs bypass tenant quotas (their admission happened
        wherever they were written) but still run behind the fair-share
        priorities already queued.
        """
        with self._lock:
            ours = set(self._tracked)
            known = {handle.job.name for handle in self.service.handles} | ours
            adopted = []
            for stored in self.store.load_jobs().values():
                if stored.name in known or not stored.deferred:
                    continue
                adopted.append(self.service.submit(decode_job(stored.spec)))
        if adopted:
            self._wake.set()
        return [handle.job.name for handle in adopted]

    # ------------------------------------------------------------ the runner
    def _dispatch_cycle(self) -> int:
        """Promote backlog → service: ≤ ``max_running`` per tenant."""
        promoted = 0
        with self._lock:
            for tenant_name, backlog in self._backlogs.items():
                tenant = next(
                    (t for t in self.tenants.tenants() if t.name == tenant_name),
                    None,
                )
                limit = tenant.quota.max_running if tenant is not None else 0
                take = len(backlog) if limit <= 0 else min(limit, len(backlog))
                for job in backlog[:take]:
                    self.service.submit(job)
                    promoted += 1
                del backlog[:take]
        return promoted

    def _run_cycle(self) -> None:
        self.service.run()
        for handle in self.service.handles:
            if not handle.done:
                continue
            name = handle.job.name
            with self._lock:
                tenant_name = self._tracked.pop(name, None)
            if tenant_name is not None:
                self.quotas.job_settled(tenant_name, was_dispatched=True)
            self._publish_settled(handle)

    def _runner_loop(self) -> None:
        while not self._stop.is_set():
            self._wake.wait(timeout=0.2)
            self._wake.clear()
            if self._stop.is_set():
                return
            while not self._stop.is_set():
                self._dispatch_cycle()
                if not any(not handle.done for handle in self.service.handles):
                    break
                self._run_cycle()
                with self._lock:
                    if not any(self._backlogs.values()):
                        break

    # ------------------------------------------------------------- lifecycle
    def start(self, loop: asyncio.AbstractEventLoop) -> None:
        """Attach the asyncio loop (creates the hub) and start the runner."""
        self.hub = EventHub(self.store, loop)
        if self._runner is None:
            self._runner = threading.Thread(
                target=self._runner_loop, name="repro-server-runner", daemon=True
            )
            self._runner.start()
        self._wake.set()  # drain anything resume() brought back

    def stop(self) -> None:
        self._stop.set()
        self._wake.set()
        if self._runner is not None:
            self._runner.join(timeout=5)
            self._runner = None
        self.service.close()


# ----------------------------------------------------------------- ASGI app
class ServerApp:
    """Minimal ASGI application over one :class:`ServiceFront`."""

    def __init__(self, front: ServiceFront):
        self.front = front

    async def __call__(self, scope: dict, receive: Callable, send: Callable) -> None:
        if scope["type"] == "lifespan":
            while True:
                message = await receive()
                if message["type"] == "lifespan.startup":
                    self.front.start(asyncio.get_running_loop())
                    await send({"type": "lifespan.startup.complete"})
                elif message["type"] == "lifespan.shutdown":
                    self.front.stop()
                    await send({"type": "lifespan.shutdown.complete"})
                    return
        elif scope["type"] == "http":
            from repro.server.routes import dispatch

            await dispatch(self.front, scope, receive, send)
        else:  # pragma: no cover - other ASGI scope types
            raise RuntimeError(f"unsupported ASGI scope type {scope['type']!r}")


# ------------------------------------------------- stdlib HTTP/1.1 adapter
_REASONS = {
    200: "OK", 202: "Accepted", 204: "No Content", 400: "Bad Request",
    401: "Unauthorized", 404: "Not Found", 405: "Method Not Allowed",
    409: "Conflict", 429: "Too Many Requests", 500: "Internal Server Error",
}


async def _handle_connection(
    app: Callable, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
) -> None:
    try:
        while True:
            try:
                head = await reader.readuntil(b"\r\n\r\n")
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            request_line, _, header_block = head.partition(b"\r\n")
            try:
                method, target, _version = request_line.decode("latin-1").split(" ", 2)
            except ValueError:
                return
            headers: list[tuple[bytes, bytes]] = []
            for line in header_block.split(b"\r\n"):
                name, sep, value = line.partition(b":")
                if sep:
                    headers.append((name.strip().lower(), value.strip()))
            length = 0
            for name, value in headers:
                if name == b"content-length":
                    try:
                        length = int(value)
                    except ValueError:
                        return
            body = await reader.readexactly(length) if length else b""
            path, _, query = target.partition("?")
            scope = {
                "type": "http",
                "asgi": {"version": "3.0"},
                "http_version": "1.1",
                "method": method.upper(),
                "path": unquote(path),
                "raw_path": path.encode("latin-1"),
                "query_string": query.encode("latin-1"),
                "headers": headers,
            }
            keep_alive = await _run_asgi_once(app, scope, body, reader, writer)
            if not keep_alive:
                return
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown race
            pass


async def _run_asgi_once(
    app: Callable,
    scope: dict,
    body: bytes,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> bool:
    """Drive the app for one request; returns whether to keep the connection.

    Buffered responses (single ``more_body=False`` body message) get a
    ``Content-Length`` and keep-alive.  Streaming responses (SSE) are sent
    with ``Connection: close`` and no length — the HTTP/1.0-style
    read-until-close framing every SSE client accepts — and a failed write
    mid-stream surfaces to the app as :class:`ClientDisconnected`.
    """
    state = {"started": False, "streaming": False, "status": 200, "headers": []}
    request_delivered = False
    disconnected = False

    async def receive() -> dict:
        nonlocal request_delivered, disconnected
        if not request_delivered:
            request_delivered = True
            return {"type": "http.request", "body": body, "more_body": False}
        if disconnected:
            await asyncio.sleep(3600)  # spec: receive never returns twice
        # EOF on the socket is the only disconnect signal HTTP/1.1 gives us.
        # A reset counts too: a client that closes with unread data in its
        # receive buffer RSTs instead of FINing, and read() raises.
        try:
            await reader.read(1)
        except (ConnectionError, OSError):
            pass
        disconnected = True
        return {"type": "http.disconnect"}

    async def send(message: dict) -> None:
        if message["type"] == "http.response.start":
            state["status"] = message["status"]
            state["headers"] = list(message.get("headers", []))
            state["started"] = True
            return
        if message["type"] != "http.response.body":  # pragma: no cover
            return
        chunk = message.get("body", b"") or b""
        more = bool(message.get("more_body", False))
        try:
            if not state["streaming"] and not state.get("head_sent"):
                if more:
                    state["streaming"] = True
                _write_head(
                    writer,
                    state["status"],
                    state["headers"],
                    content_length=None if state["streaming"] else len(chunk),
                    keep_alive=not state["streaming"],
                )
                state["head_sent"] = True
            writer.write(chunk)
            await writer.drain()
        except (ConnectionError, OSError) as error:
            raise ClientDisconnected(str(error)) from error

    try:
        await app(scope, receive, send)
    except ClientDisconnected:
        return False
    except Exception:  # noqa: BLE001 - connection isolation
        if not state.get("head_sent"):
            try:
                _write_head(writer, 500, [], content_length=0, keep_alive=False)
                await writer.drain()
            except (ConnectionError, OSError):
                pass
        return False
    if not state.get("head_sent"):
        _write_head(writer, state["status"] if state["started"] else 500, [],
                    content_length=0, keep_alive=True)
        await writer.drain()
        return not disconnected
    return not state["streaming"] and not disconnected


def _write_head(
    writer: asyncio.StreamWriter,
    status: int,
    headers: list,
    *,
    content_length: Optional[int],
    keep_alive: bool,
) -> None:
    reason = _REASONS.get(status, "OK")
    lines = [f"HTTP/1.1 {status} {reason}".encode("latin-1")]
    seen = set()
    for name, value in headers:
        name_b = name if isinstance(name, bytes) else name.encode("latin-1")
        value_b = value if isinstance(value, bytes) else str(value).encode("latin-1")
        seen.add(name_b.lower())
        lines.append(name_b + b": " + value_b)
    if content_length is not None and b"content-length" not in seen:
        lines.append(b"content-length: " + str(content_length).encode())
    lines.append(b"connection: " + (b"keep-alive" if keep_alive else b"close"))
    writer.write(b"\r\n".join(lines) + b"\r\n\r\n")


async def serve(
    app: Callable, host: str = "127.0.0.1", port: int = 0
) -> asyncio.AbstractServer:
    """Serve an ASGI app over the stdlib asyncio HTTP/1.1 adapter."""
    return await asyncio.start_server(
        lambda reader, writer: _handle_connection(app, reader, writer),
        host=host,
        port=port,
    )


class ServerThread:
    """Run a front's HTTP server on a background thread (tests, examples).

    Usage::

        front = ServiceFront("jobs.sqlite", tenants=registry)
        with ServerThread(front) as server:
            requests_to(server.address)
    """

    def __init__(self, front: ServiceFront, *, host: str = "127.0.0.1", port: int = 0):
        self.front = front
        self.app = ServerApp(front)
        self._host = host
        self._port = port
        self.address: Optional[tuple[str, int]] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._ready = threading.Event()

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-server", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=10):
            raise RuntimeError("server thread failed to start")
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop

        async def boot():
            self._server = await serve(self.app, self._host, self._port)
            self.address = self._server.sockets[0].getsockname()[:2]
            self.front.start(loop)
            self._ready.set()

        loop.run_until_complete(boot())
        try:
            loop.run_forever()
        finally:
            # Idle keep-alive connection handlers are parked in readuntil();
            # cancel them so loop.close() is quiet.
            pending = [t for t in asyncio.all_tasks(loop) if not t.done()]
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    def stop(self) -> None:
        self.front.stop()
        loop = self._loop
        if loop is not None and loop.is_running():

            def shutdown():
                if self._server is not None:
                    self._server.close()
                loop.stop()

            loop.call_soon_threadsafe(shutdown)
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()
