"""Quota enforcement and weighted fair pacing for the service front.

Two mechanisms, deliberately separate:

* :class:`QuotaGate` answers *may this tenant submit right now?* —
  token-bucket rate limiting plus queued/running counts against the
  tenant's :class:`~repro.server.tenants.TenantQuota`.  Refusals raise
  :class:`QuotaExceeded` carrying a ``retry_after`` hint (the HTTP layer
  turns it into ``429`` + ``Retry-After``).

* :class:`StridePacer` answers *in what order should admitted jobs run?* —
  classic stride scheduling: each tenant advances a per-tenant *pass* by
  ``STRIDE_SCALE / weight`` per admitted job, and the pass becomes the
  job's scheduler priority (lower runs first).  A weight-2 tenant's passes
  climb half as fast, so under contention it holds twice the share — while
  an idle tenant re-entering starts at the current virtual time
  (``max(own pass, global minimum)``) instead of its stale low pass, so
  sleeping never banks credit.  The scheduler's ``age_after`` aging is the
  backstop underneath: even a pass far in the future eventually improves,
  so no tenant starves outright.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from repro.server.tenants import Tenant

#: Stride numerator: pass increments are STRIDE_SCALE // weight, so weights
#: up to this value stay meaningfully distinct.
STRIDE_SCALE = 10_000


class QuotaExceeded(Exception):
    """A submission was refused; ``retry_after`` hints when to try again."""

    def __init__(self, reason: str, *, retry_after: float = 1.0):
        super().__init__(reason)
        self.reason = reason
        self.retry_after = max(0.0, retry_after)


class TokenBucket:
    """Thread-safe token bucket (``rate`` tokens/s, ``burst`` capacity).

    ``rate <= 0`` disables the bucket (every take succeeds) — the spelling
    of an unlimited quota axis.
    """

    def __init__(self, rate: float, burst: int):
        self.rate = rate
        self.burst = max(1, burst)
        self._tokens = float(self.burst)
        self._updated = time.monotonic()
        self._lock = threading.Lock()

    def try_take(self) -> Optional[float]:
        """Take one token; ``None`` on success, else seconds until one frees."""
        if self.rate <= 0:
            return None
        with self._lock:
            now = time.monotonic()
            self._tokens = min(
                float(self.burst), self._tokens + (now - self._updated) * self.rate
            )
            self._updated = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return None
            return (1.0 - self._tokens) / self.rate


class QuotaGate:
    """Admission control for one server: counts + buckets per tenant."""

    def __init__(self):
        self._lock = threading.Lock()
        self._buckets: dict[str, TokenBucket] = {}
        self._queued: dict[str, int] = {}
        self._running: dict[str, int] = {}

    def _bucket(self, tenant: Tenant) -> TokenBucket:
        bucket = self._buckets.get(tenant.name)
        if bucket is None:
            bucket = self._buckets[tenant.name] = TokenBucket(
                tenant.quota.submit_rate, tenant.quota.burst
            )
        return bucket

    def admit_submit(self, tenant: Tenant) -> None:
        """Charge one submission; raises :class:`QuotaExceeded` on refusal.

        Checked in cheap-first order: queue-depth (a count), then the rate
        bucket — so a tenant at its queue cap is not also charged a token.
        On success the tenant's queued count is incremented; the caller must
        balance with :meth:`job_settled` (or :meth:`forget` on a failed
        internal submit).
        """
        quota = tenant.quota
        with self._lock:
            queued = self._queued.get(tenant.name, 0)
            if quota.max_queued > 0 and queued >= quota.max_queued:
                raise QuotaExceeded(
                    f"tenant {tenant.name!r} has {queued} queued jobs "
                    f"(max_queued={quota.max_queued})",
                    retry_after=2.0,
                )
        wait = self._bucket(tenant).try_take()
        if wait is not None:
            raise QuotaExceeded(
                f"tenant {tenant.name!r} exceeded its submit rate "
                f"({quota.submit_rate:g}/s, burst {quota.burst})",
                retry_after=wait,
            )
        with self._lock:
            self._queued[tenant.name] = self._queued.get(tenant.name, 0) + 1

    def may_dispatch(self, tenant: Tenant) -> bool:
        """May one more of this tenant's jobs start running right now?"""
        if tenant.quota.max_running <= 0:
            return True
        with self._lock:
            return self._running.get(tenant.name, 0) < tenant.quota.max_running

    def job_dispatched(self, tenant_name: str) -> None:
        with self._lock:
            self._running[tenant_name] = self._running.get(tenant_name, 0) + 1

    def job_settled(self, tenant_name: str, *, was_dispatched: bool) -> None:
        with self._lock:
            self._queued[tenant_name] = max(0, self._queued.get(tenant_name, 0) - 1)
            if was_dispatched:
                self._running[tenant_name] = max(
                    0, self._running.get(tenant_name, 0) - 1
                )

    def forget(self, tenant_name: str) -> None:
        """Refund a queued slot whose submission failed after admission."""
        with self._lock:
            self._queued[tenant_name] = max(0, self._queued.get(tenant_name, 0) - 1)

    def counts(self, tenant_name: str) -> tuple[int, int]:
        """(queued, running) for *tenant_name* — introspection/stats."""
        with self._lock:
            return (
                self._queued.get(tenant_name, 0),
                self._running.get(tenant_name, 0),
            )


class StridePacer:
    """Weighted fair ordering: tenant weight → scheduler priority stream."""

    def __init__(self):
        self._lock = threading.Lock()
        self._passes: dict[str, int] = {}

    def next_priority(self, tenant: Tenant) -> int:
        """The scheduler priority for this tenant's next admitted job.

        Returns the tenant's pass *after* charging one stride.  Joining (or
        rejoining after idling) starts from the current virtual time — the
        minimum outstanding pass — so no tenant converts idle time into a
        burst of front-of-queue slots.
        """
        stride = STRIDE_SCALE // max(1, tenant.weight)
        with self._lock:
            virtual_time = min(self._passes.values()) if self._passes else 0
            current = max(self._passes.get(tenant.name, 0), virtual_time)
            nxt = current + stride
            self._passes[tenant.name] = nxt
            return nxt
