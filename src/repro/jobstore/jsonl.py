"""Append-only JSONL job store: the persistence behind resumable batches.

The :class:`~repro.service.MigrationService` appends one JSON line per job
lifecycle transition:

* ``{"type": "submitted", ...}`` — written at submission time.  Carries the
  :meth:`~repro.service.JobHandle.to_dict` snapshot (status ``pending``, no
  result), the job's ``priority``/``deadline``, its ``tenant`` and identity
  ``pin`` (when known), and a ``spec`` field — the pickled
  :class:`~repro.service.MigrationJob` (base64, prefixed with a format
  version) so an interrupted batch can be reconstructed by a later process;
* ``{"type": "running", ...}`` — written when the job is dispatched (a job
  whose *last* record is ``running`` was interrupted mid-flight and is
  rerun on resume);
* ``{"type": "settled", ...}`` — the terminal :meth:`JobHandle.to_dict`
  snapshot, result payload included.

Under distributed execution the store is also the **lease journal** — the
source of truth for which worker owns which job right now:

* ``{"type": "leased", "job": ..., "worker": ..., "expiry": ...}`` — the
  scheduler's fleet assigned the job to one remote worker, with the wall
  clock instant the lease expires unless renewed;
* ``{"type": "lease_heartbeat", ...}`` — the worker's heartbeat renewed the
  lease (new ``expiry``);
* ``{"type": "released", "outcome": "done" | "failed" | "lost", ...}`` —
  the lease ended: the worker returned a result, or it vanished
  (``"lost"``) and the fleet will re-lease the job elsewhere.  A crashed
  coordinator therefore leaves a journal whose trailing ``leased`` lines
  without a matching ``released`` identify exactly the work that was in
  flight.

Lease lines are *annotations*: they never change a job's lifecycle standing
(:attr:`StoredJob.status` still comes from the latest lifecycle record);
:meth:`JobStore.load` surfaces the latest lease line per job as
:attr:`StoredJob.lease`.  ``{"type": "event", "job": ..., "seq": ...,
"event": {...}}`` records are annotations too: the persisted typed session
event stream that the server's SSE replay reads back
(:meth:`JobStore.load_events`).

The store is **append-only**: resuming never rewrites history, it appends
the resumed run's records to the same file.  The latest record per job name
wins when loading; a torn trailing line (the writing process died mid-write)
is ignored.  Job names are the keys — resubmitting a name overwrites the
earlier job's standing on load, so batch producers should keep names unique.
:meth:`JobStore.compact` is the one sanctioned rewrite: it folds settled
generations into one snapshot line each (atomically, via a temp file and
``os.replace``) without changing any job's standing.

``spec`` payloads are Python pickles: the store is a local operational
artifact (like a WAL), not an interchange format — do not load stores from
untrusted sources.  Specs are versioned (``"<version>:<base64>"``) so that
resuming a store written by an incompatible code generation fails loudly in
:func:`decode_job` instead of unpickling garbage.
"""

from __future__ import annotations

import json
import os
import shutil
import threading
import time
from typing import Iterator, Optional

from repro.jobstore.base import (
    EVENT_RECORD_TYPE,
    JobRecordWriter,
    StoredJob,
)


def _tolerant_replace(swap: str, path: str) -> None:
    """``os.replace`` that tolerates an open read handle on the destination.

    On POSIX the rename is unconditionally atomic and a concurrent reader
    simply keeps its (consistent) pre-compact view of the old inode.  On
    platforms where an open destination handle can make ``os.replace``
    raise ``PermissionError`` (Windows file-sharing semantics), the swap is
    retried briefly and then degrades to an in-place rewrite: not
    crash-atomic, but never an unhandled exception mid-compaction — and
    ``load()`` already skips any torn line a concurrent reader could
    observe during the rewrite.
    """
    last_error: Optional[BaseException] = None
    for delay in (0.0, 0.01, 0.05, 0.1, 0.25):
        if delay:
            time.sleep(delay)
        try:
            os.replace(swap, path)
            return
        except PermissionError as error:  # destination held open by a reader
            last_error = error
    try:
        with open(swap, "r", encoding="utf-8") as source:
            with open(path, "w", encoding="utf-8") as destination:
                shutil.copyfileobj(source, destination)
                destination.flush()
                os.fsync(destination.fileno())
        os.unlink(swap)
    except OSError as error:
        raise last_error from error


class JobStore(JobRecordWriter):
    """Append-only JSONL persistence for one service's job lifecycle.

    ``fsync=False`` trades the flush-to-platter guarantee for append
    latency — reasonable for lease journals on ephemeral coordinators,
    wrong for stores a batch must survive power loss through.
    """

    #: Backend discriminator (see :func:`repro.jobstore.open_job_store`).
    backend = "jsonl"

    def __init__(self, path: str | os.PathLike, *, fsync: bool = True):
        self.path = str(path)
        self.fsync = fsync
        self._lock = threading.Lock()

    # ---------------------------------------------------------------- writing
    def append(self, record: dict) -> None:
        """Atomically append one record line.

        One ``write()`` call per record (newline included) keeps concurrent
        appenders from interleaving partial lines — POSIX ``O_APPEND``
        writes are atomic with respect to each other — and a crash
        mid-write tears at most the final line, which :meth:`load` skips.
        """
        line = json.dumps(record, sort_keys=True) + "\n"
        with self._lock:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line)
                handle.flush()
                if self.fsync:
                    os.fsync(handle.fileno())

    # ---------------------------------------------------------------- reading
    @staticmethod
    def _records(path: str | os.PathLike) -> Iterator[dict]:
        """Parse the store's intact records in file order (torn lines skip)."""
        if not os.path.exists(path):
            return
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except json.JSONDecodeError:
                    # The torn tail of a process that died mid-append;
                    # everything before it is intact (one record per line).
                    continue

    @classmethod
    def load(cls, path: str | os.PathLike) -> dict[str, StoredJob]:
        """Replay a store into per-job standings (latest record wins).

        A path with no store file yet is an empty store, not an error — the
        file only springs into existence at the first submission, and
        callers like ``adopt_unfinished`` legitimately scan before that.
        Lease-journal and event records update :attr:`StoredJob.lease` /
        nothing respectively; a trailing ``leased`` line must not make a
        ``settled`` job look live.
        """
        jobs: dict[str, StoredJob] = {}
        for record in cls._records(path):
            name = record.get("job")
            if not isinstance(name, str):
                continue
            jobs.setdefault(name, StoredJob(name)).absorb(record)
        return jobs

    def load_jobs(self) -> dict[str, StoredJob]:
        """Instance spelling of :meth:`load` (the backend-portable surface)."""
        return type(self).load(self.path)

    def query_jobs(
        self,
        *,
        tenant: Optional[str] = None,
        status: Optional[str] = None,
        fingerprint: Optional[str] = None,
    ) -> list[StoredJob]:
        """Filtered job standings.

        The JSONL backend has no index: every query is a full replay — this
        method exists so callers are backend-portable, and so the SQLite
        backend's indexed lookups have an apples-to-apples baseline
        (``benchmarks/bench_server.py`` measures exactly this call).
        """
        results = []
        for job in self.load_jobs().values():
            if not job.last and job.spec is None:
                continue  # annotation-only standing (e.g. a bare lease journal)
            if tenant is not None and job.tenant != tenant:
                continue
            if status is not None and job.status != status:
                continue
            if fingerprint is not None and job.fingerprint != fingerprint:
                continue
            results.append(job)
        return results

    # ---------------------------------------------------------------- events
    def load_events(self, job_name: str, *, after: int = 0) -> list[tuple[int, dict]]:
        """The persisted event stream of one job with ``seq > after``."""
        events = [
            (int(record["seq"]), record.get("event") or {})
            for record in self._records(self.path)
            if record.get("type") == EVENT_RECORD_TYPE
            and record.get("job") == job_name
            and isinstance(record.get("seq"), int)
            and record["seq"] > after
        ]
        events.sort(key=lambda item: item[0])
        return events

    def last_event_seq(self, job_name: str) -> int:
        """Highest persisted event ``seq`` for *job_name* (0 when none)."""
        best = 0
        for record in self._records(self.path):
            if (
                record.get("type") == EVENT_RECORD_TYPE
                and record.get("job") == job_name
                and isinstance(record.get("seq"), int)
            ):
                best = max(best, record["seq"])
        return best

    # ------------------------------------------------------------- compaction
    def compact(self) -> int:
        """Fold settled generations into one snapshot line each.

        Rewrites the store so every **settled** job keeps only its terminal
        record, every unsettled job keeps its latest spec-carrying record
        (plus its latest lifecycle record when that differs), its event log,
        and any open lease (released leases and leases of settled jobs are
        dropped — an open lease on an unsettled job is evidence of in-flight
        work).  The rewrite is atomic (temp file + ``os.replace``; where an
        open reader blocks the rename it is retried and then degrades to an
        in-place rewrite, see :func:`_tolerant_replace`) and happens under
        the append lock, so concurrent appends serialize against it.
        Returns the number of lines removed.
        """
        with self._lock:
            if not os.path.exists(self.path):
                return 0
            jobs: dict[str, StoredJob] = {}
            lifecycle: dict[str, list[dict]] = {}
            events: dict[str, list[dict]] = {}
            total = 0
            with open(self.path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    total += 1
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        continue  # the torn tail dies in compaction
                    name = record.get("job")
                    if not isinstance(name, str):
                        continue
                    entry = jobs.setdefault(name, StoredJob(name))
                    if record.get("type") == EVENT_RECORD_TYPE:
                        events.setdefault(name, []).append(record)
                        continue
                    was_lease = entry.lease
                    entry.absorb(record)
                    if entry.lease is not was_lease:
                        continue  # lease annotation: not lifecycle history
                    lifecycle.setdefault(name, []).append(record)
            lines: list[str] = []
            for name, entry in jobs.items():
                if entry.settled:
                    # Terminal snapshot only: the event log of a settled job
                    # is history (its SSE replay served it while live).
                    lines.append(json.dumps(entry.last, sort_keys=True))
                    continue
                history = lifecycle.get(name, [])
                spec_record = next(
                    (r for r in reversed(history) if r.get("spec") is not None), None
                )
                if spec_record is not None:
                    lines.append(json.dumps(spec_record, sort_keys=True))
                if entry.last and entry.last is not spec_record:
                    lines.append(json.dumps(entry.last, sort_keys=True))
                if entry.lease is not None and entry.lease.get("type") != "released":
                    lines.append(json.dumps(entry.lease, sort_keys=True))
                for record in events.get(name, ()):
                    lines.append(json.dumps(record, sort_keys=True))
            swap = self.path + ".compact"
            with open(swap, "w", encoding="utf-8") as handle:
                for line in lines:
                    handle.write(line + "\n")
                handle.flush()
                if self.fsync:
                    os.fsync(handle.fileno())
            _tolerant_replace(swap, self.path)
            return total - len(lines)

    def close(self) -> None:
        """Nothing to release (appends open and close per record)."""
