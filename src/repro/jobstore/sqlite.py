"""Indexed SQLite job-store backend.

Same record vocabulary and :class:`~repro.jobstore.base.StoredJob` replay
semantics as the JSONL log, but persisted into an indexed database so that
``GET /jobs?tenant=…&status=…`` is a WHERE clause instead of a full-file
scan, and SSE replay (``load_events``) is a range lookup instead of a
re-parse.  Selected by URL scheme or extension in
:func:`repro.jobstore.open_job_store` (``sqlite:jobs.db``, ``*.sqlite``,
``*.db``).

Schema:

* ``jobs`` — one row per job name: latest lifecycle record (JSON), sticky
  ``spec``/``tenant``/``fingerprint`` identity fields, current
  ``status``; indexed by tenant, status, and fingerprint.
* ``events`` — the persisted typed session event stream, primary-keyed on
  ``(job, seq)`` (monotonic per job; SSE ``Last-Event-ID`` replay is a
  ``seq > ?`` range scan).
* ``leases`` — latest lease-journal record per job (the fleet's
  in-flight-work evidence after a crash).
* ``annotations`` — batch-wide records with no job name (``degraded``
  ladder steps), kept for post-mortem only.

Durability: WAL journal mode; ``fsync=True`` maps to
``PRAGMA synchronous=FULL``, ``fsync=False`` to ``NORMAL`` — the same
latency/durability trade the JSONL backend's ``fsync`` flag expresses.
Connections are opened with ``check_same_thread=False`` and every statement
runs under one process-level lock: the store is shared by the service's
submit path, the scheduler's lease journal, and the server's event
publisher, all on different threads.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
from typing import Optional

from repro.jobstore.base import (
    EVENT_RECORD_TYPE,
    LEASE_RECORD_TYPES,
    JobRecordWriter,
    StoredJob,
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    name        TEXT PRIMARY KEY,
    tenant      TEXT NOT NULL DEFAULT '',
    status      TEXT NOT NULL DEFAULT 'pending',
    fingerprint TEXT NOT NULL DEFAULT '',
    priority    INTEGER,
    deadline    REAL,
    spec        TEXT,
    pin         TEXT,
    last        TEXT NOT NULL DEFAULT '{}',
    updated     INTEGER NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS idx_jobs_tenant      ON jobs (tenant);
CREATE INDEX IF NOT EXISTS idx_jobs_status      ON jobs (status);
CREATE INDEX IF NOT EXISTS idx_jobs_fingerprint ON jobs (fingerprint);
CREATE TABLE IF NOT EXISTS events (
    job     TEXT NOT NULL,
    seq     INTEGER NOT NULL,
    payload TEXT NOT NULL,
    PRIMARY KEY (job, seq)
);
CREATE TABLE IF NOT EXISTS leases (
    job    TEXT PRIMARY KEY,
    worker TEXT,
    expiry REAL,
    record TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS annotations (
    id     INTEGER PRIMARY KEY AUTOINCREMENT,
    record TEXT NOT NULL
);
"""


class SQLiteJobStore(JobRecordWriter):
    """Indexed job store over one SQLite database file."""

    backend = "sqlite"

    def __init__(self, path: str | os.PathLike, *, fsync: bool = True):
        self.path = str(path)
        self.fsync = fsync
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(self.path, check_same_thread=False)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute(
            "PRAGMA synchronous=%s" % ("FULL" if fsync else "NORMAL")
        )
        self._conn.executescript(_SCHEMA)
        self._conn.commit()
        # Monotonic replay order for `last` tie-breaking within one process.
        self._counter = int(
            self._conn.execute("SELECT COALESCE(MAX(updated), 0) FROM jobs").fetchone()[0]
        )

    # ---------------------------------------------------------------- writing
    def append(self, record: dict) -> None:
        """Fold one record into the indexed state (the backend's replay rule).

        Unlike the JSONL log, the fold happens at write time: lifecycle
        records upsert the job row (sticky identity fields survive records
        that omit them, exactly like :meth:`StoredJob.absorb`), lease
        records upsert the lease row, event records insert into ``events``.
        """
        kind = record.get("type")
        name = record.get("job")
        with self._lock:
            if kind in LEASE_RECORD_TYPES and isinstance(name, str):
                self._conn.execute(
                    "INSERT INTO leases (job, worker, expiry, record) "
                    "VALUES (?, ?, ?, ?) "
                    "ON CONFLICT(job) DO UPDATE SET worker=excluded.worker, "
                    "expiry=excluded.expiry, record=excluded.record",
                    (
                        name,
                        record.get("worker"),
                        record.get("expiry"),
                        json.dumps(record, sort_keys=True),
                    ),
                )
            elif kind == EVENT_RECORD_TYPE and isinstance(name, str):
                self._conn.execute(
                    "INSERT OR REPLACE INTO events (job, seq, payload) "
                    "VALUES (?, ?, ?)",
                    (
                        name,
                        int(record.get("seq", 0)),
                        json.dumps(record.get("event") or {}, sort_keys=True),
                    ),
                )
            elif isinstance(name, str):
                self._counter += 1
                fingerprint = record.get("fingerprint") or (record.get("pin") or {}).get(
                    "source"
                )
                pin = record.get("pin")
                self._conn.execute(
                    "INSERT INTO jobs (name, tenant, status, fingerprint, priority,"
                    " deadline, spec, pin, last, updated)"
                    " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)"
                    " ON CONFLICT(name) DO UPDATE SET"
                    "  tenant = CASE WHEN excluded.tenant != ''"
                    "    THEN excluded.tenant ELSE jobs.tenant END,"
                    "  status = excluded.status,"
                    "  fingerprint = CASE WHEN excluded.fingerprint != ''"
                    "    THEN excluded.fingerprint ELSE jobs.fingerprint END,"
                    "  priority = COALESCE(excluded.priority, jobs.priority),"
                    "  deadline = COALESCE(excluded.deadline, jobs.deadline),"
                    "  spec = COALESCE(excluded.spec, jobs.spec),"
                    "  pin = COALESCE(excluded.pin, jobs.pin),"
                    "  last = excluded.last,"
                    "  updated = excluded.updated",
                    (
                        name,
                        record.get("tenant") or "",
                        record.get("status", "pending"),
                        fingerprint or "",
                        record.get("priority"),
                        record.get("deadline"),
                        record.get("spec"),
                        json.dumps(pin, sort_keys=True) if pin is not None else None,
                        json.dumps(record, sort_keys=True),
                        self._counter,
                    ),
                )
            else:
                # Batch-wide annotation (e.g. `degraded`): no job standing.
                self._conn.execute(
                    "INSERT INTO annotations (record) VALUES (?)",
                    (json.dumps(record, sort_keys=True),),
                )
            self._conn.commit()

    # ---------------------------------------------------------------- reading
    def _stored(self, row: tuple) -> StoredJob:
        name, tenant, fingerprint, spec, last, lease = row
        return StoredJob(
            name=name,
            last=json.loads(last) if last else {},
            spec=spec,
            lease=json.loads(lease) if lease else None,
            tenant=tenant or "",
            fingerprint=fingerprint or "",
        )

    _SELECT = (
        "SELECT j.name, j.tenant, j.fingerprint, j.spec, j.last, l.record "
        "FROM jobs j LEFT JOIN leases l ON l.job = j.name"
    )

    def load_jobs(self) -> dict[str, StoredJob]:
        """Every job's standing (same shape as ``JobStore.load``).

        Includes annotation-only standings — lease-journal entries for names
        with no lifecycle record yet (a fleet whose ``lease_log`` is this
        store) — exactly like the JSONL replay does.
        """
        with self._lock:
            rows = self._conn.execute(self._SELECT + " ORDER BY j.updated").fetchall()
            orphans = self._conn.execute(
                "SELECT l.job, '', '', NULL, NULL, l.record FROM leases l "
                "WHERE l.job NOT IN (SELECT name FROM jobs) ORDER BY l.job"
            ).fetchall()
        return {row[0]: self._stored(row) for row in list(rows) + list(orphans)}

    def query_jobs(
        self,
        *,
        tenant: Optional[str] = None,
        status: Optional[str] = None,
        fingerprint: Optional[str] = None,
    ) -> list[StoredJob]:
        """Filtered job standings — an indexed WHERE clause, not a scan."""
        clauses, params = [], []
        if tenant is not None:
            clauses.append("j.tenant = ?")
            params.append(tenant)
        if status is not None:
            clauses.append("j.status = ?")
            params.append(status)
        if fingerprint is not None:
            clauses.append("j.fingerprint = ?")
            params.append(fingerprint)
        sql = self._SELECT
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY j.updated"
        with self._lock:
            rows = self._conn.execute(sql, params).fetchall()
        return [self._stored(row) for row in rows]

    # ---------------------------------------------------------------- events
    def load_events(self, job_name: str, *, after: int = 0) -> list[tuple[int, dict]]:
        """The persisted event stream of one job with ``seq > after``."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT seq, payload FROM events WHERE job = ? AND seq > ?"
                " ORDER BY seq",
                (job_name, after),
            ).fetchall()
        return [(seq, json.loads(payload)) for seq, payload in rows]

    def last_event_seq(self, job_name: str) -> int:
        """Highest persisted event ``seq`` for *job_name* (0 when none)."""
        with self._lock:
            row = self._conn.execute(
                "SELECT COALESCE(MAX(seq), 0) FROM events WHERE job = ?",
                (job_name,),
            ).fetchone()
        return int(row[0])

    # ------------------------------------------------------------- compaction
    def compact(self) -> int:
        """`JobStore.compact` parity: drop history the replay no longer needs.

        The row-per-job design folds lifecycle history at write time, so
        compaction here removes the remaining append-only residue: released
        leases, leases of settled jobs, event logs of settled jobs, and
        accumulated batch annotations.  Returns the number of rows removed.
        """
        with self._lock:
            removed = 0
            cursor = self._conn.execute(
                "DELETE FROM leases WHERE json_extract(record, '$.type') = 'released'"
                " OR job IN (SELECT name FROM jobs WHERE status IN"
                " ('done','failed','cancelled','expired','quarantined','incompatible'))"
            )
            removed += cursor.rowcount
            cursor = self._conn.execute(
                "DELETE FROM events WHERE job IN (SELECT name FROM jobs WHERE status IN"
                " ('done','failed','cancelled','expired','quarantined','incompatible'))"
            )
            removed += cursor.rowcount
            cursor = self._conn.execute("DELETE FROM annotations")
            removed += cursor.rowcount
            self._conn.commit()
            self._conn.execute("VACUUM")
        return removed

    def close(self) -> None:
        with self._lock:
            self._conn.close()
