"""Shared vocabulary of the job-store backends.

The store interface has two implementations — the append-only JSONL log
(:mod:`repro.jobstore.jsonl`, the original format and still the default)
and the indexed SQLite database (:mod:`repro.jobstore.sqlite`) — selected
by URL scheme/extension in :func:`repro.jobstore.open_job_store`.  Both
speak the same *record* vocabulary (``submitted`` / ``running`` /
``settled`` lifecycle records, the ``leased`` / ``lease_heartbeat`` /
``released`` lease journal, ``degraded`` batch annotations, and ``event``
records persisting the typed session event stream), and both replay into
the same :class:`StoredJob` standings, so
:meth:`~repro.service.MigrationService.resume` and the fleet's lease
recovery work identically over either backend.

This module holds what the backends share: the record-type constants, the
versioned ``spec`` encoding, :class:`StoredJob`, and
:class:`JobRecordWriter` — the mixin that builds the canonical record
shapes and funnels them through each backend's ``append``.
"""

from __future__ import annotations

import base64
import binascii
import hashlib
import pickle
from dataclasses import dataclass, field
from typing import Any, Optional

#: ``JobStatus`` values that mean the job will never run again.
TERMINAL_STATUSES = frozenset(
    {"done", "failed", "cancelled", "expired", "quarantined", "incompatible"}
)

#: Record types that annotate work assignment without changing lifecycle
#: standing (the lease journal; see the jsonl module docstring).
LEASE_RECORD_TYPES = frozenset({"leased", "lease_heartbeat", "released"})

#: Record type persisting one typed session event (``seq``-numbered per
#: job) — an annotation, like lease records: it never changes standing.
EVENT_RECORD_TYPE = "event"

#: Version written into new ``spec`` fields.  Bump when the pickled
#: MigrationJob shape changes incompatibly; old stores then fail loudly on
#: resume instead of resurrecting half-compatible jobs.
SPEC_FORMAT_VERSION = 3

#: Versions this code generation can still decode.  Version 1 is the
#: unprefixed bare-base64 format of earlier stores (no colon in the base64
#: alphabet, so the two formats cannot be confused); version 2 pickles lack
#: the ``tenant``/``workload`` job fields, which resume re-derives.
SUPPORTED_SPEC_VERSIONS = frozenset({1, 2, SPEC_FORMAT_VERSION})


class JobStoreFormatError(RuntimeError):
    """A ``spec`` field is from an incompatible format version or corrupt."""


def encode_job(job: Any) -> str:
    """Pickle a job spec into the store's versioned ``spec`` field."""
    encoded = base64.b64encode(pickle.dumps(job)).decode("ascii")
    return f"{SPEC_FORMAT_VERSION}:{encoded}"


def decode_job(spec: str) -> Any:
    """Rebuild a job spec from a ``spec`` field (trusted local stores only).

    Raises :class:`JobStoreFormatError` for an unsupported format version or
    a corrupt payload — loudly, because silently unpickling a spec written
    by an incompatible code generation is how resume corrupts a batch.
    """
    prefix, sep, rest = spec.partition(":")
    if sep and prefix.isdigit():
        version, encoded = int(prefix), rest
    else:
        version, encoded = 1, spec
    if version not in SUPPORTED_SPEC_VERSIONS:
        raise JobStoreFormatError(
            f"job spec format v{version} is not supported by this code "
            f"generation (supported: {sorted(SUPPORTED_SPEC_VERSIONS)}); "
            f"rerun the batch instead of resuming it"
        )
    try:
        return pickle.loads(base64.b64decode(encoded.encode("ascii"), validate=True))
    except (binascii.Error, ValueError, pickle.UnpicklingError, EOFError) as error:
        raise JobStoreFormatError(f"job spec payload is corrupt: {error}") from error


def source_fingerprint(program: Any) -> str:
    """Stable short fingerprint of one source program (pin/index key)."""
    from repro.lang.pretty import format_program

    return hashlib.sha256(format_program(program).encode("utf-8")).hexdigest()[:16]


def job_pin(job: Any) -> Optional[dict]:
    """The verifiable identity of a job spec, stored next to the pickle.

    ``source`` is the source-program fingerprint, ``target`` the target
    schema's name, ``workload`` the registry workload the job was built
    from (when the submitter recorded one).  Resume recomputes the pin from
    the decoded spec — and, for registry-built jobs, from the *current*
    registry — and refuses to run jobs whose pins no longer match
    (:attr:`~repro.service.JobStatus.INCOMPATIBLE`), instead of trusting a
    pickle that decoded into something other than what was submitted.
    """
    program = getattr(job, "source_program", None)
    if program is None:
        return None
    pin = {"source": source_fingerprint(program)}
    target = getattr(job, "target_schema", None)
    if target is not None and getattr(target, "name", ""):
        pin["target"] = target.name
    workload = getattr(job, "workload", None)
    if workload:
        pin["workload"] = workload
    return pin


@dataclass
class StoredJob:
    """One job's standing after replaying the store."""

    name: str
    #: The latest lifecycle record (its ``status`` decides resumability).
    last: dict = field(default_factory=dict)
    #: The pickled job spec from the submission record, if any.
    spec: Optional[str] = None
    #: The latest lease-journal record, if any (``leased`` /
    #: ``lease_heartbeat`` / ``released``) — purely informational.
    lease: Optional[dict] = None
    #: The submitting tenant (empty for tenant-less direct submissions).
    tenant: str = ""
    #: Source-program fingerprint from the submission pin (index key).
    fingerprint: str = ""

    @property
    def status(self) -> str:
        return self.last.get("status", "pending")

    @property
    def settled(self) -> bool:
        return self.status in TERMINAL_STATUSES

    @property
    def resumable(self) -> bool:
        """Unfinished and reconstructable: the job to rerun on resume.

        Includes ``running`` standings — after a crash, a job interrupted
        mid-run is exactly what resume must rerun.  Live-service adoption
        uses the stricter :attr:`deferred` instead.
        """
        return not self.settled and self.spec is not None

    @property
    def deferred(self) -> bool:
        """Submitted but never dispatched: safe for a live service to adopt.

        A ``running`` standing is excluded — on a *shared* store it means
        some other live service currently owns the job, and adopting it
        would double-execute; only a post-crash :meth:`MigrationService.resume`
        may claim running jobs (the crashed owner is gone by definition).
        """
        return self.status == "pending" and self.spec is not None

    def absorb(self, record: dict) -> None:
        """Fold one replayed record into this standing (latest wins).

        The shared replay rule of both backends: lease records only update
        :attr:`lease`, ``event`` records are skipped entirely, lifecycle
        records become :attr:`last` while sticky identity fields (``spec``,
        ``tenant``, ``fingerprint``) survive later records that omit them.
        """
        kind = record.get("type")
        if kind in LEASE_RECORD_TYPES:
            self.lease = record
            return
        if kind == EVENT_RECORD_TYPE:
            return
        if record.get("spec") is not None:
            self.spec = record["spec"]
        if record.get("tenant"):
            self.tenant = record["tenant"]
        fingerprint = record.get("fingerprint") or (record.get("pin") or {}).get("source")
        if fingerprint:
            self.fingerprint = fingerprint
        self.last = record


class JobRecordWriter:
    """Record-shape builders shared by every backend (mixin over ``append``)."""

    def append(self, record: dict) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def record_submitted(self, handle, job) -> None:
        """Persist a submission: the pending snapshot plus the rebuild spec."""
        record = handle.to_dict(include_program=False)
        record.update(
            type="submitted",
            priority=job.priority,
            deadline=job.deadline,
            spec=encode_job(job),
        )
        tenant = getattr(job, "tenant", "")
        if tenant:
            record["tenant"] = tenant
        pin = job_pin(job)
        if pin is not None:
            record["pin"] = pin
            record["fingerprint"] = pin["source"]
        self.append(record)

    def record_running(self, handle) -> None:
        self.append({"type": "running", "job": handle.job.name, "status": "running"})

    def record_settled(self, handle, *, include_program: bool = True) -> None:
        record = handle.to_dict(include_program=include_program)
        record["type"] = "settled"
        self.append(record)

    # ---------------------------------------------------------- lease journal
    def record_leased(self, job_name: str, worker_id: str, expiry: float) -> None:
        self.append(
            {"type": "leased", "job": job_name, "worker": worker_id, "expiry": expiry}
        )

    def record_lease_heartbeat(self, job_name: str, worker_id: str, expiry: float) -> None:
        self.append(
            {
                "type": "lease_heartbeat",
                "job": job_name,
                "worker": worker_id,
                "expiry": expiry,
            }
        )

    def record_lease_released(self, job_name: str, worker_id: str, outcome: str) -> None:
        self.append(
            {"type": "released", "job": job_name, "worker": worker_id, "outcome": outcome}
        )

    def record_degraded(
        self, from_mode: str, to_mode: str, reason: str, *, jobs: Any = ()
    ) -> None:
        """Journal one degradation-ladder step (fleet -> pool -> inline).

        Batch-wide annotation, not a per-job lifecycle record: it carries a
        ``jobs`` *list* instead of a ``job`` name, so replay — which keys on
        the string ``job`` field — skips it by construction and no job's
        standing changes.
        """
        self.append(
            {
                "type": "degraded",
                "from": from_mode,
                "to": to_mode,
                "reason": reason,
                "jobs": list(jobs),
            }
        )

    # -------------------------------------------------------------- events
    def record_event(self, job_name: str, seq: int, payload: dict) -> None:
        """Persist one typed session event (``seq`` is per-job monotonic).

        The server's SSE replay (``Last-Event-ID``) reads these back with
        ``load_events``; like lease records they are annotations — a job's
        lifecycle standing never depends on its event log.
        """
        self.append(
            {"type": EVENT_RECORD_TYPE, "job": job_name, "seq": seq, "event": payload}
        )
