"""Job-store backends: append-only JSONL log and indexed SQLite database.

Public surface (stable across the backend split — ``from repro.jobstore
import JobStore, decode_job`` keeps meaning what it meant when the package
was a single module):

* :class:`JobStore` — the JSONL backend (the original format, still the
  default);
* :class:`SQLiteJobStore` — the indexed backend (jobs/events/leases
  tables, WAL mode, tenant/status/fingerprint indexes);
* :func:`open_job_store` — backend selection by URL scheme or extension;
* :func:`migrate_jsonl_to_sqlite` — one-way migration of an existing log;
* the shared vocabulary from :mod:`repro.jobstore.base`
  (``encode_job``/``decode_job``, :class:`StoredJob`, the record-type
  constants, :exc:`JobStoreFormatError`).
"""

from __future__ import annotations

import os
from typing import Any, Union

from repro.jobstore.base import (
    EVENT_RECORD_TYPE,
    LEASE_RECORD_TYPES,
    SPEC_FORMAT_VERSION,
    SUPPORTED_SPEC_VERSIONS,
    TERMINAL_STATUSES,
    JobRecordWriter,
    JobStoreFormatError,
    StoredJob,
    decode_job,
    encode_job,
    job_pin,
    source_fingerprint,
)
from repro.jobstore.jsonl import JobStore
from repro.jobstore.sqlite import SQLiteJobStore

#: File extensions that select the SQLite backend without a scheme prefix.
_SQLITE_EXTENSIONS = (".sqlite", ".sqlite3", ".db")


def open_job_store(
    target: Union[str, os.PathLike, Any], *, fsync: bool = True
) -> Any:
    """Open a job store, selecting the backend from *target*.

    * an object that already quacks like a store (has ``append`` and
      ``load_jobs``) passes through unchanged;
    * ``sqlite:PATH`` / ``sqlite://PATH``, or a path ending in ``.sqlite``
      / ``.sqlite3`` / ``.db``, opens :class:`SQLiteJobStore`;
    * ``jsonl:PATH`` / ``jsonl://PATH``, or any other path, opens the
      JSONL :class:`JobStore`.
    """
    if hasattr(target, "append") and hasattr(target, "load_jobs"):
        return target
    path = os.fspath(target)
    lowered = path.lower()
    for scheme, cls in (("sqlite:", SQLiteJobStore), ("jsonl:", JobStore)):
        if lowered.startswith(scheme):
            rest = path[len(scheme) :]
            if rest.startswith("//"):
                rest = rest[2:]
            return cls(rest, fsync=fsync)
    if lowered.endswith(_SQLITE_EXTENSIONS):
        return SQLiteJobStore(path, fsync=fsync)
    return JobStore(path, fsync=fsync)


def migrate_jsonl_to_sqlite(
    jsonl_path: Union[str, os.PathLike],
    sqlite_path: Union[str, os.PathLike],
    *,
    fsync: bool = True,
) -> SQLiteJobStore:
    """Replay an existing JSONL log into a (new or existing) SQLite store.

    Records are appended in file order, so the SQLite store's fold-at-write
    replay reaches exactly the standings ``JobStore.load`` would have
    reached — the migration is a change of representation, not of state.
    The JSONL source is left untouched; delete it once satisfied.
    """
    store = SQLiteJobStore(sqlite_path, fsync=fsync)
    for record in JobStore._records(jsonl_path):
        store.append(record)
    return store


__all__ = [
    "EVENT_RECORD_TYPE",
    "LEASE_RECORD_TYPES",
    "SPEC_FORMAT_VERSION",
    "SUPPORTED_SPEC_VERSIONS",
    "TERMINAL_STATUSES",
    "JobRecordWriter",
    "JobStore",
    "JobStoreFormatError",
    "SQLiteJobStore",
    "StoredJob",
    "decode_job",
    "encode_job",
    "job_pin",
    "migrate_jsonl_to_sqlite",
    "open_job_store",
    "source_fingerprint",
]
