"""Join-chain evaluation.

A join chain is evaluated to a list of :class:`JoinedRow` objects.  Each
joined row records, for every attribute of every joined table, its value, and
also remembers the ``rowid`` of the source row contributed by each table so
that deletions and updates performed *through* the join can find the original
tuples (Section 3.1 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.datamodel.instance import DatabaseInstance, Row
from repro.datamodel.schema import Attribute
from repro.lang.ast import JoinChain


class ExecutionError(Exception):
    """Raised when a statement or query cannot be executed."""


@dataclass(eq=True, slots=True)
class JoinedRow:
    """One row of the virtual table produced by evaluating a join chain."""

    values: dict[Attribute, Any]
    provenance: dict[str, int]

    def value(self, attribute: Attribute) -> Any:
        if attribute not in self.values:
            raise ExecutionError(f"attribute {attribute} not available in joined row")
        return self.values[attribute]

    def rowid(self, table: str) -> int:
        if table not in self.provenance:
            raise ExecutionError(f"table {table!r} not part of this joined row")
        return self.provenance[table]


def _row_to_joined(table: str, row: Row) -> JoinedRow:
    values = {Attribute(table, col): val for col, val in row.values.items()}
    return JoinedRow(values, {table: row.rowid})


def evaluate_join(instance: DatabaseInstance, chain: JoinChain) -> list[JoinedRow]:
    """Evaluate *chain* against *instance*.

    Tables are joined left to right; each join condition is applied as soon as
    both of its attributes are available.  Conditions whose attributes only
    become available later are deferred, which makes the result independent of
    the order in which conditions are listed.
    """
    if len(set(chain.tables)) != len(chain.tables):
        raise ExecutionError(f"join chain {chain} repeats a table; self-joins are not supported")

    result: list[JoinedRow] = [
        _row_to_joined(chain.tables[0], row) for row in instance.rows(chain.tables[0])
    ]
    pending = list(chain.conditions)
    joined_tables = {chain.tables[0]}

    def applicable(conditions: list, tables: set[str]) -> tuple[list, list]:
        now, later = [], []
        for left, right in conditions:
            if left.table in tables and right.table in tables:
                now.append((left, right))
            else:
                later.append((left, right))
        return now, later

    # Conditions that only mention the first table (degenerate) are applied immediately.
    now, pending = applicable(pending, joined_tables)
    for left, right in now:
        result = [r for r in result if r.value(left) == r.value(right)]

    for next_table in chain.tables[1:]:
        next_rows = [_row_to_joined(next_table, row) for row in instance.rows(next_table)]
        joined_tables.add(next_table)
        now, pending = applicable(pending, joined_tables)
        combined: list[JoinedRow] = []
        for left_row in result:
            for right_row in next_rows:
                values = dict(left_row.values)
                values.update(right_row.values)
                provenance = dict(left_row.provenance)
                provenance.update(right_row.provenance)
                candidate = JoinedRow(values, provenance)
                if all(candidate.value(l) == candidate.value(r) for l, r in now):
                    combined.append(candidate)
        result = combined

    if pending:
        raise ExecutionError(
            f"join chain {chain} has conditions over tables not in the chain: {pending}"
        )
    return result
