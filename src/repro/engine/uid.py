"""Fresh unique values (UIDs) used by insert-into-join shorthand.

When an insertion targets a join chain ``T1 ⋈ T2`` the engine must fabricate
the linking key values (``UID0``, ``UID1`` ... in the paper's Figure 4).  We
model those with :class:`UniqueValue`, an opaque value that only compares
equal to itself, and :class:`UidGenerator`, a deterministic per-execution
counter so that repeated executions of the same program on the same
invocation sequence produce identical results.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class UniqueValue:
    """An opaque fresh value, identified by a per-execution index."""

    index: int

    def __str__(self) -> str:
        return f"UID{self.index}"

    def __repr__(self) -> str:
        return f"UniqueValue({self.index})"


class UidGenerator:
    """Deterministic generator of :class:`UniqueValue` instances."""

    def __init__(self) -> None:
        self._next = 0

    def fresh(self) -> UniqueValue:
        value = UniqueValue(self._next)
        self._next += 1
        return value

    def reset(self) -> None:
        self._next = 0

    def fork(self) -> "UidGenerator":
        """An independent generator continuing from the same counter.

        Used by the columnar batch kernels: when one execution prefix is
        shared by several invocation sequences, the state is forked at the
        branch point and each branch must allocate exactly the UIDs a scalar
        run of its sequence would have allocated from that point on.
        """
        clone = UidGenerator()
        clone._next = self._next
        return clone

    @property
    def count(self) -> int:
        return self._next
