"""Query evaluation and statement execution against a database instance.

This module implements the operational semantics of Figure 5: relational
algebra queries (projection, selection, joins) and the three update
statements (insert — including the insert-into-join shorthand —, delete over
a join chain, and update over a join chain).
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.datamodel.instance import DatabaseInstance
from repro.datamodel.schema import Attribute
from repro.engine.joins import ExecutionError, JoinedRow, evaluate_join
from repro.engine.predicates import evaluate_predicate, resolve_operand
from repro.engine.uid import UidGenerator
from repro.lang.ast import (
    Delete,
    Insert,
    JoinChain,
    Projection,
    Query,
    Selection,
    Statement,
    Update,
)


class Evaluator:
    """Evaluates queries and executes statements on one database instance."""

    def __init__(self, instance: DatabaseInstance, uid_generator: UidGenerator | None = None):
        self.instance = instance
        self.uids = uid_generator or UidGenerator()

    # ---------------------------------------------------------------- queries
    def query_rows(self, query: Query, bindings: dict[str, Any]) -> list[JoinedRow]:
        """Evaluate a query down to joined rows (before any final projection)."""
        if isinstance(query, JoinChain):
            return evaluate_join(self.instance, query)
        if isinstance(query, Selection):
            rows = self.query_rows(query.source, bindings)
            subquery = lambda q: self.query_tuples(q, bindings)
            return [
                row
                for row in rows
                if evaluate_predicate(query.predicate, row, bindings, subquery)
            ]
        if isinstance(query, Projection):
            # A projection below the top level restricts visible attributes; we
            # keep full rows and let the outer projection pick columns, which is
            # observationally equivalent for the language of Figure 5.
            return self.query_rows(query.source, bindings)
        raise TypeError(f"unknown query node {query!r}")

    def _default_columns(self, query: Query) -> list[Attribute]:
        """Column order used when a query has no top-level projection."""
        node = query
        while isinstance(node, (Projection, Selection)):
            node = node.source
        columns: list[Attribute] = []
        for table in node.tables:
            columns.extend(self.instance.schema.attributes_of(table))
        return columns

    def query_tuples(self, query: Query, bindings: dict[str, Any]) -> list[tuple]:
        """Evaluate a query to a list of result tuples (bag semantics)."""
        if isinstance(query, Projection):
            rows = self.query_rows(query.source, bindings)
            return [tuple(row.value(attr) for attr in query.attributes) for row in rows]
        rows = self.query_rows(query, bindings)
        columns = self._default_columns(query)
        return [tuple(row.value(attr) for attr in columns) for row in rows]

    # ------------------------------------------------------------- statements
    def execute(self, stmt: Statement, bindings: dict[str, Any]) -> None:
        if isinstance(stmt, Insert):
            self._execute_insert(stmt, bindings)
        elif isinstance(stmt, Delete):
            self._execute_delete(stmt, bindings)
        elif isinstance(stmt, Update):
            self._execute_update(stmt, bindings)
        else:
            raise TypeError(f"unknown statement node {stmt!r}")

    def _execute_insert(self, stmt: Insert, bindings: dict[str, Any]) -> None:
        """Insert into a table or a join chain (shorthand of Section 3.1).

        Attributes connected by join conditions form equivalence classes; a
        class takes a provided value if any member is supplied, otherwise one
        shared fresh UID.  Unsupplied attributes outside any class each get
        their own fresh UID.
        """
        chain = stmt.target
        provided: dict[Attribute, Any] = {
            attr: resolve_operand(operand, None, bindings) for attr, operand in stmt.values
        }

        # Union-find over attributes linked by join conditions.
        parent: dict[Attribute, Attribute] = {}

        def find(a: Attribute) -> Attribute:
            parent.setdefault(a, a)
            while parent[a] != a:
                parent[a] = parent[parent[a]]
                a = parent[a]
            return a

        def union(a: Attribute, b: Attribute) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[ra] = rb

        for left, right in chain.conditions:
            union(left, right)

        # Assign one value per equivalence class.
        class_values: dict[Attribute, Any] = {}
        for attr, value in provided.items():
            root = find(attr)
            class_values[root] = value

        def value_for(attr: Attribute) -> Any:
            if attr in provided:
                return provided[attr]
            root = find(attr)
            if root in class_values:
                return class_values[root]
            # Attributes linked by a join condition but with no provided value
            # share one fresh UID; isolated attributes get their own.
            if attr in parent:
                fresh = self.uids.fresh()
                class_values[root] = fresh
                return fresh
            return self.uids.fresh()

        for table in chain.tables:
            if table not in self.instance.schema:
                self.instance.schema.table(table)  # raises SchemaError
            row_values = {
                col: value_for(Attribute(table, col))
                for col in self.instance.columns_of(table)
            }
            self.instance.insert_full_row(table, row_values)

    def _matching_rows(
        self, chain: JoinChain, predicate, bindings: dict[str, Any]
    ) -> list[JoinedRow]:
        rows = evaluate_join(self.instance, chain)
        subquery = lambda q: self.query_tuples(q, bindings)
        return [row for row in rows if evaluate_predicate(predicate, row, bindings, subquery)]

    def _execute_delete(self, stmt: Delete, bindings: dict[str, Any]) -> None:
        matches = self._matching_rows(stmt.source, stmt.predicate, bindings)
        chain_tables = set(stmt.source.tables)
        for table in stmt.tables:
            if table not in chain_tables:
                raise ExecutionError(f"delete target {table!r} not in join chain {stmt.source}")
            rowids = {row.rowid(table) for row in matches}
            self.instance.delete_rows(table, rowids)

    def _execute_update(self, stmt: Update, bindings: dict[str, Any]) -> None:
        matches = self._matching_rows(stmt.source, stmt.predicate, bindings)
        table = stmt.attribute.table
        if table not in set(stmt.source.tables):
            raise ExecutionError(f"updated attribute {stmt.attribute} not in join chain {stmt.source}")
        value = resolve_operand(stmt.value, None, bindings)
        rowids = {row.rowid(table) for row in matches}
        self.instance.update_rows(table, rowids, stmt.attribute.name, value)
