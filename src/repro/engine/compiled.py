"""Runtime of the compiled execution backend.

The compiler (:mod:`repro.engine.compiler`) translates a program AST once
into Python closures; this module holds the lean data layer those closures
run against:

* :class:`CRow` — a slotted row whose values live in a list indexed by the
  column *offset* resolved at compile time (no per-access ``dict[Attribute]``
  lookup, no per-row column-name dict);
* :class:`CompiledState` — table storage as a list of row lists indexed by a
  compile-time table index, plus the per-execution UID generator and rowid
  counter;
* :class:`CompiledFunction` / :class:`CompiledProgram` — the executable
  artefacts, with :meth:`CompiledProgram.run_sequence` mirroring
  :func:`repro.engine.interpreter.run_invocation_sequence` (same outputs,
  same error behaviour, fresh empty database per call).

Joined rows in this backend are plain tuples of :class:`CRow` objects
aligned to the join chain's table order; provenance (the rowid of each
source row) therefore comes for free and the compiler turns every attribute
access into a ``row[table_index].vals[column_offset]`` closure.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from repro.engine.interpreter import InvocationError
from repro.engine.uid import UidGenerator


class CRow:
    """A slotted table row: stable identity plus offset-indexed values."""

    __slots__ = ("rowid", "vals")

    def __init__(self, rowid: int, vals: list):
        self.rowid = rowid
        self.vals = vals

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CRow({self.rowid}, {self.vals})"


class CompiledState:
    """Mutable database state for one execution of a compiled program."""

    __slots__ = ("tables", "uids", "next_rowid")

    def __init__(self, num_tables: int):
        self.tables: list[list[CRow]] = [[] for _ in range(num_tables)]
        self.uids = UidGenerator()
        self.next_rowid = 1

    def append_row(self, table_index: int, vals: list) -> None:
        self.tables[table_index].append(CRow(self.next_rowid, vals))
        self.next_rowid += 1

    def clear(self) -> None:
        for rows in self.tables:
            rows.clear()
        self.uids.reset()
        self.next_rowid = 1


class CompiledFunction:
    """One compiled function: parameter metadata plus the executable closure.

    ``run`` takes ``(state, bindings)``; query functions return the list of
    result tuples, update functions return ``None``.  Closures are pure with
    respect to the state argument, so one compiled function is reusable
    across executions and across programs that share its AST and schema.
    """

    __slots__ = ("name", "param_names", "is_query", "run")

    def __init__(
        self,
        name: str,
        param_names: tuple[str, ...],
        is_query: bool,
        run: Callable[[CompiledState, dict], Any],
    ):
        self.name = name
        self.param_names = param_names
        self.is_query = is_query
        self.run = run


class CompiledProgram:
    """A program compiled to closures, executable from the empty database."""

    __slots__ = ("name", "num_tables", "functions")

    def __init__(self, name: str, num_tables: int, functions: dict[str, CompiledFunction]):
        self.name = name
        self.num_tables = num_tables
        self.functions = functions

    def new_state(self) -> CompiledState:
        return CompiledState(self.num_tables)

    def call(self, state: CompiledState, name: str, args: Sequence[Any] = ()) -> list[tuple] | None:
        """Invoke one function against *state* (mirrors ``ProgramInterpreter.call``)."""
        func = self.functions.get(name)
        if func is None:
            # Same error class as Program.function on an unknown name.
            raise KeyError(f"program {self.name!r} has no function {name!r}")
        if len(args) != len(func.param_names):
            raise InvocationError(
                f"function {name!r} expects {len(func.param_names)} arguments, got {len(args)}"
            )
        bindings = dict(zip(func.param_names, args))
        if func.is_query:
            return func.run(state, bindings)
        func.run(state, bindings)
        return None

    def run_sequence(self, sequence: Iterable[tuple[str, Sequence[Any]]]) -> list[list[tuple]]:
        """Execute an invocation sequence from the empty database.

        Output- and error-equivalent to
        :func:`repro.engine.interpreter.run_invocation_sequence` on the same
        program (pinned by ``tests/test_compiled.py``).
        """
        state = CompiledState(self.num_tables)
        outputs: list[list[tuple]] = []
        for name, args in sequence:
            result = self.call(state, name, args)
            if result is not None:
                outputs.append(result)
        return outputs
