"""Compile program ASTs into Python closures (the compiled execution backend).

The tree-walk interpreter (:mod:`repro.engine.interpreter`) re-resolves every
attribute through a ``dict[Attribute]`` and re-walks every predicate AST node
per row, per sequence, per candidate.  The search-and-check loop executes the
same few functions thousands of times, so this module translates each
function *once* into closures over pre-resolved metadata:

* attribute access becomes ``row[table_index].vals[column_offset]`` with both
  indices resolved at compile time;
* join chains become **hash joins**: at every step, the applicable equality
  conditions that link an already-joined table to the next table form the
  build key of an index over the next table's rows, probed left-to-right.
  Conditions local to the next table become pre-filters, and a step degrades
  to the interpreter's nested loop when it has no linking condition, when a
  condition references a column the chain cannot resolve (to preserve the
  interpreter's per-row error behaviour), or when a key value is unhashable;
* ``IN`` sub-queries compile to sub-plans whose first-column member set is
  computed lazily on first use and memoized for the duration of one
  filtering pass (the instance cannot change mid-pass);
* insert-into-join compiles the union-find over join conditions away: every
  target cell becomes either a resolved-value reference or a fresh-UID slot,
  with slots ordered so that fresh UIDs are allocated in exactly the
  interpreter's traversal order (UIDs appear in outputs, so allocation order
  is observable).

Error equivalence with the interpreter is part of the contract (it is what
lets :class:`~repro.equivalence.tester.BoundedTester` treat the two backends
interchangeably): conditions the interpreter checks per execution — self
joins, unknown tables, out-of-chain conditions or delete targets — compile
to closures that raise the same exception class *when the function runs*,
never at compile time, and per-row errors (an attribute missing from a
joined row, an unbound parameter) raise only when a row actually reaches
them.  ``tests/test_compiled.py`` pins output and error equivalence across
the workload registry.

Known, documented divergence: ``IN`` membership uses a hash set, so a
``NaN`` payload would match itself by identity where the interpreter's
``==`` scan would not.  No workload produces NaN values.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.datamodel.instance import InstanceError
from repro.datamodel.schema import Attribute, Schema, SchemaError
from repro.engine.compiled import CompiledFunction, CompiledProgram, CompiledState, CRow
from repro.engine.joins import ExecutionError
from repro.engine.predicates import compare
from repro.lang.ast import (
    And,
    AttrRef,
    CompareOp,
    Comparison,
    Const,
    Delete,
    Function,
    InQuery,
    Insert,
    JoinChain,
    Not,
    Or,
    Program,
    Projection,
    QueryFunction,
    Selection,
    TruePred,
    Update,
    UpdateFunction,
    Var,
)

#: Valid values of ``SynthesisConfig.execution_backend``.
EXECUTION_BACKENDS = ("interpreter", "compiled")


def _raise_execution(message: str):
    def run(*_args, **_kwargs):
        raise ExecutionError(message)

    return run


class _FunctionCompiler:
    """Compiles the functions of one schema (table/column offsets fixed)."""

    def __init__(self, schema: Schema):
        self.schema = schema
        self.table_index: dict[str, int] = {name: i for i, name in enumerate(schema.table_names)}
        self.column_offsets: dict[str, dict[str, int]] = {
            name: {col: i for i, col in enumerate(schema.table(name).columns)}
            for name in schema.table_names
        }
        self.num_tables = len(self.table_index)
        self._subquery_slots = 0

    # ------------------------------------------------------------- extractors
    def _cell_extractor(self, attr: Attribute, pos: dict[str, int]):
        """``jrow -> value`` for one attribute of a join chain's row tuple.

        Unresolvable attributes get a closure raising the interpreter's
        "not available in joined row" error when (and only when) a row
        reaches it.
        """
        ti = pos.get(attr.table)
        if ti is not None:
            ci = self.column_offsets.get(attr.table, {}).get(attr.name)
            if ci is not None:
                return lambda j, _ti=ti, _ci=ci: j[_ti].vals[_ci]
        message = f"attribute {attr} not available in joined row"

        def unavailable(_j, _message=message):
            raise ExecutionError(_message)

        return unavailable

    def _row_operand(self, operand, pos: dict[str, int], params: frozenset[str]):
        """``(jrow, bindings) -> value`` for a predicate/projection operand."""
        if isinstance(operand, Const):
            return lambda _j, _b, _v=operand.value: _v
        if isinstance(operand, Var):
            if operand.name not in params:
                return _raise_execution(f"unbound parameter {operand.name!r}")
            return lambda _j, b, _n=operand.name: b[_n]
        if isinstance(operand, AttrRef):
            extractor = self._cell_extractor(operand.attribute, pos)
            return lambda j, _b, _ex=extractor: _ex(j)
        raise TypeError(f"unknown operand {operand!r}")

    def _rowless_operand(self, operand, params: frozenset[str]):
        """``bindings -> value`` for insert values and update right-hand sides."""
        if isinstance(operand, Const):
            return lambda _b, _v=operand.value: _v
        if isinstance(operand, Var):
            if operand.name not in params:
                return _raise_execution(f"unbound parameter {operand.name!r}")
            return lambda b, _n=operand.name: b[_n]
        if isinstance(operand, AttrRef):
            return _raise_execution(
                f"attribute {operand.attribute} used outside a row context"
            )
        raise TypeError(f"unknown operand {operand!r}")

    # ------------------------------------------------------------ join chains
    def compile_chain(self, chain: JoinChain):
        """Compile to ``(plan, pos)``: ``plan(state) -> list`` of row tuples.

        ``pos`` maps each chain table to its slot in the row tuples.  Chains
        the interpreter rejects at execution time compile to raising plans so
        the error still only surfaces when the owning function is invoked.
        """
        tables = chain.tables
        pos: dict[str, int] = {}
        for i, t in enumerate(tables):
            pos.setdefault(t, i)
        if len(pos) != len(tables):
            return (
                _raise_execution(
                    f"join chain {chain} repeats a table; self-joins are not supported"
                ),
                pos,
            )
        if tables[0] not in self.table_index:
            # The interpreter touches the first table's rows before anything
            # else, so this one *is* an immediate error.
            message = f"unknown table {tables[0]!r}"

            def unknown_first(_state, _message=message):
                raise InstanceError(_message)

            return unknown_first, pos

        pending = list(chain.conditions)
        joined = {tables[0]}

        def split(conditions):
            now, later = [], []
            for left, right in conditions:
                if left.table in joined and right.table in joined:
                    now.append((left, right))
                else:
                    later.append((left, right))
            return now, later

        first_conds, pending = split(pending)
        steps = []
        for next_table in tables[1:]:
            joined.add(next_table)
            now, pending = split(pending)
            if next_table not in self.table_index:
                # The interpreter reads the table's rows only when its join
                # step is reached — *after* earlier per-row condition errors —
                # so the InstanceError must be deferred to this step position.
                message = f"unknown table {next_table!r}"

                def unknown_step(_state, _jrows, _message=message):
                    raise InstanceError(_message)

                steps.append(unknown_step)
            else:
                steps.append(self._compile_step(next_table, now, pos))
        if pending:
            # The interpreter raises this only after the full join loop ran
            # (and an unknown mid-chain table would have raised there first),
            # so it becomes a final step, not an immediate error.
            steps.append(
                _raise_execution(
                    f"join chain {chain} has conditions over tables not in the chain: {pending}"
                )
            )

        # Degenerate conditions over the first table: one filtering pass per
        # condition, in condition order (exactly the interpreter's loop).
        first_filters = []
        for left, right in first_conds:
            lf = self._cell_extractor(left, pos)
            rf = self._cell_extractor(right, pos)
            first_filters.append((lf, rf))

        first_ti = self.table_index[tables[0]]

        def plan(state, _ti=first_ti, _filters=tuple(first_filters), _steps=tuple(steps)):
            jrows = [(r,) for r in state.tables[_ti]]
            for lf, rf in _filters:
                jrows = [j for j in jrows if lf(j) == rf(j)]
            for step in _steps:
                jrows = step(state, jrows)
            return jrows

        return plan, pos

    def _resolvable(self, attr: Attribute) -> bool:
        return attr.name in self.column_offsets.get(attr.table, {})

    def _compile_step(self, next_table: str, conds, pos: dict[str, int]):
        """One join step: extend each row tuple with a row of *next_table*."""
        nti = self.table_index[next_table]

        def nested(cond_evals):
            # The interpreter's loop: cross product, conditions evaluated in
            # order with short-circuit (so per-row errors fire identically).
            def step(state, jrows, _nti=nti, _evals=tuple(cond_evals)):
                next_rows = state.tables[_nti]
                out = []
                for j in jrows:
                    for r in next_rows:
                        cand = j + (r,)
                        for ev in _evals:
                            if not ev(cand):
                                break
                        else:
                            out.append(cand)
                return out

            return step

        def pair_eval(left, right):
            lf = self._cell_extractor(left, pos)
            rf = self._cell_extractor(right, pos)
            return lambda cand, _lf=lf, _rf=rf: _lf(cand) == _rf(cand)

        all_evals = [pair_eval(left, right) for left, right in conds]
        if any(
            not self._resolvable(left) or not self._resolvable(right) for left, right in conds
        ):
            # A condition the chain cannot resolve raises per combined row in
            # the interpreter; only the nested loop reproduces that exactly.
            return nested(all_evals)

        next_offsets = self.column_offsets[next_table]
        probe_extractors: list[Callable] = []
        build_offsets: list[int] = []
        local_filters: list[tuple[int, int]] = []
        for left, right in conds:
            if left.table == next_table and right.table == next_table:
                local_filters.append((next_offsets[left.name], next_offsets[right.name]))
            elif left.table == next_table:
                build_offsets.append(next_offsets[left.name])
                probe_extractors.append(self._cell_extractor(right, pos))
            else:
                build_offsets.append(next_offsets[right.name])
                probe_extractors.append(self._cell_extractor(left, pos))

        if not build_offsets:
            return nested(all_evals)

        fallback = nested(all_evals)
        single = len(build_offsets) == 1

        def step(
            state,
            jrows,
            _nti=nti,
            _locals=tuple(local_filters),
            _build=tuple(build_offsets),
            _probe=tuple(probe_extractors),
            _single=single,
            _fallback=fallback,
        ):
            next_rows = state.tables[_nti]
            try:
                if _locals:
                    next_rows = [
                        r for r in next_rows if all(r.vals[a] == r.vals[b] for a, b in _locals)
                    ]
                index: dict[Any, list[CRow]] = {}
                out = []
                if _single:
                    boff = _build[0]
                    pex = _probe[0]
                    for r in next_rows:
                        index.setdefault(r.vals[boff], []).append(r)
                    for j in jrows:
                        bucket = index.get(pex(j))
                        if bucket:
                            for r in bucket:
                                out.append(j + (r,))
                else:
                    for r in next_rows:
                        index.setdefault(tuple(r.vals[o] for o in _build), []).append(r)
                    for j in jrows:
                        bucket = index.get(tuple(pex(j) for pex in _probe))
                        if bucket:
                            for r in bucket:
                                out.append(j + (r,))
                return out
            except TypeError:
                # Unhashable key value: the nested loop only needs equality.
                return _fallback(state, jrows)

        return step

    # ------------------------------------------------------------- predicates
    def compile_predicate(self, pred, pos: dict[str, int], params: frozenset[str]):
        """Compile to ``(state, jrow, bindings, memo) -> bool``."""
        if isinstance(pred, TruePred):
            return lambda _s, _j, _b, _m: True
        if isinstance(pred, Comparison):
            lf = self._row_operand(pred.left, pos, params)
            rf = self._row_operand(pred.right, pos, params)
            op = pred.op
            if op is CompareOp.EQ:
                return lambda _s, j, b, _m, _lf=lf, _rf=rf: _lf(j, b) == _rf(j, b)
            if op is CompareOp.NE:
                return lambda _s, j, b, _m, _lf=lf, _rf=rf: _lf(j, b) != _rf(j, b)
            return lambda _s, j, b, _m, _lf=lf, _rf=rf, _op=op: compare(
                _lf(j, b), _op, _rf(j, b)
            )
        if isinstance(pred, InQuery):
            opf = self._row_operand(pred.operand, pos, params)
            subplan = self.compile_query(pred.query, params)
            slot = self._subquery_slots
            self._subquery_slots += 1

            def member(state, j, b, memo, _opf=opf, _subplan=subplan, _slot=slot):
                value = _opf(j, b)  # operand errors fire before the sub-query runs
                entry = memo.get(_slot)
                if entry is None:
                    firsts = [t[0] for t in _subplan(state, b, memo) if t]
                    try:
                        entry = (True, frozenset(firsts))
                    except TypeError:  # unhashable member value
                        entry = (False, firsts)
                    memo[_slot] = entry
                hashable, members = entry
                if hashable:
                    try:
                        return value in members
                    except TypeError:  # unhashable probe value
                        pass
                # The interpreter's linear == scan (members on the left).
                return any(m == value for m in members)

            return member
        if isinstance(pred, And):
            lf = self.compile_predicate(pred.left, pos, params)
            rf = self.compile_predicate(pred.right, pos, params)
            return lambda s, j, b, m, _lf=lf, _rf=rf: _lf(s, j, b, m) and _rf(s, j, b, m)
        if isinstance(pred, Or):
            lf = self.compile_predicate(pred.left, pos, params)
            rf = self.compile_predicate(pred.right, pos, params)
            return lambda s, j, b, m, _lf=lf, _rf=rf: _lf(s, j, b, m) or _rf(s, j, b, m)
        if isinstance(pred, Not):
            inner = self.compile_predicate(pred.operand, pos, params)
            return lambda s, j, b, m, _f=inner: not _f(s, j, b, m)
        raise TypeError(f"unknown predicate node {pred!r}")

    # ---------------------------------------------------------------- queries
    def compile_query(self, query, params: frozenset[str]):
        """Compile to ``(state, bindings, memo) -> list[tuple]``."""
        node = query
        projection: Optional[tuple[Attribute, ...]] = None
        if isinstance(node, Projection):
            projection = node.attributes
            node = node.source
        selections = []  # outermost first, applied innermost first
        while isinstance(node, (Projection, Selection)):
            if isinstance(node, Selection):
                selections.append(node.predicate)
            node = node.source
        if not isinstance(node, JoinChain):
            raise TypeError(f"unknown query node {node!r}")

        chain_plan, pos = self.compile_chain(node)
        filters = tuple(
            self.compile_predicate(p, pos, params)
            for p in reversed(selections)
            if not isinstance(p, TruePred)
        )
        if projection is not None:
            extractors = tuple(self._cell_extractor(attr, pos) for attr in projection)
        else:
            extractors = tuple(
                self._cell_extractor(Attribute(table, col), pos)
                for table in node.tables
                for col in self.column_offsets.get(table, {})
            )

        def run(state, bindings, memo, _plan=chain_plan, _filters=filters, _ex=extractors):
            jrows = _plan(state)
            for f in _filters:
                jrows = [j for j in jrows if f(state, j, bindings, memo)]
            return [tuple(e(j) for e in _ex) for j in jrows]

        return run

    # ------------------------------------------------------------- statements
    def _compile_matcher(self, chain: JoinChain, predicate, params: frozenset[str]):
        """Join-then-filter, shared by delete and update."""
        chain_plan, pos = self.compile_chain(chain)
        pred_fn = (
            None
            if isinstance(predicate, TruePred)
            else self.compile_predicate(predicate, pos, params)
        )

        def matches(state, bindings, _plan=chain_plan, _pred=pred_fn):
            jrows = _plan(state)
            if _pred is not None:
                memo: dict = {}
                jrows = [j for j in jrows if _pred(state, j, bindings, memo)]
            return jrows

        return matches, pos

    def compile_insert(self, stmt: Insert, params: frozenset[str]):
        chain = stmt.target
        resolvers = tuple(
            self._rowless_operand(operand, params) for _attr, operand in stmt.values
        )
        # Last value wins per attribute, but *first* occurrence fixes the
        # iteration position — exactly dict-comprehension semantics.
        provided: dict[Attribute, int] = {}
        for i, (attr, _operand) in enumerate(stmt.values):
            provided[attr] = i

        parent: dict[Attribute, Attribute] = {}

        def find(a: Attribute) -> Attribute:
            parent.setdefault(a, a)
            while parent[a] != a:
                parent[a] = parent[parent[a]]
                a = parent[a]
            return a

        for left, right in chain.conditions:
            ra, rb = find(left), find(right)
            if ra != rb:
                parent[ra] = rb

        root_provided: dict[Attribute, int] = {}
        for attr, idx in provided.items():
            root_provided[find(attr)] = idx

        root_slots: dict[Attribute, int] = {}
        table_ops = []
        for table in chain.tables:
            if table not in self.table_index:
                message = f"unknown table {table!r} in schema {self.schema.name!r}"

                def raise_schema(_state, _vals, _fresh, _message=message):
                    raise SchemaError(_message)

                table_ops.append(raise_schema)
                continue
            cells: list[tuple[bool, int]] = []
            for col in self.column_offsets[table]:
                attr = Attribute(table, col)
                if attr in provided:
                    cells.append((True, provided[attr]))
                    continue
                root = find(attr)
                if root in root_provided:
                    cells.append((True, root_provided[root]))
                else:
                    slot = root_slots.setdefault(root, len(root_slots))
                    cells.append((False, slot))

            def insert_row(state, vals, fresh, _ti=self.table_index[table], _cells=tuple(cells)):
                row = []
                for is_value, arg in _cells:
                    if is_value:
                        row.append(vals[arg])
                    else:
                        v = fresh.get(arg)
                        if v is None:
                            v = state.uids.fresh()
                            fresh[arg] = v
                        row.append(v)
                state.append_row(_ti, row)

            table_ops.append(insert_row)

        def run(state, bindings, _resolvers=resolvers, _ops=tuple(table_ops)):
            vals = [f(bindings) for f in _resolvers]
            fresh: dict[int, Any] = {}
            for op in _ops:
                op(state, vals, fresh)

        return run

    def compile_delete(self, stmt: Delete, params: frozenset[str]):
        matcher, pos = self._compile_matcher(stmt.source, stmt.predicate, params)
        target_ops = []
        for table in stmt.tables:
            pi = pos.get(table)
            if pi is None:
                message = f"delete target {table!r} not in join chain {stmt.source}"

                def raise_target(_state, _matches, _message=message):
                    raise ExecutionError(_message)

                target_ops.append(raise_target)
                continue
            ti = self.table_index.get(table)
            if ti is None:
                # The chain itself is invalid; the matcher raises first.
                continue

            def delete_rows(state, matches, _ti=ti, _pi=pi):
                rowids = {j[_pi].rowid for j in matches}
                if rowids:
                    state.tables[_ti] = [
                        r for r in state.tables[_ti] if r.rowid not in rowids
                    ]

            target_ops.append(delete_rows)

        def run(state, bindings, _matcher=matcher, _ops=tuple(target_ops)):
            matches = _matcher(state, bindings)
            for op in _ops:
                op(state, matches)

        return run

    def compile_update(self, stmt: Update, params: frozenset[str]):
        matcher, pos = self._compile_matcher(stmt.source, stmt.predicate, params)
        table = stmt.attribute.table
        value_fn = self._rowless_operand(stmt.value, params)
        pi = pos.get(table)
        if pi is None:
            message = f"updated attribute {stmt.attribute} not in join chain {stmt.source}"

            def run_bad_table(state, bindings, _matcher=matcher, _message=message):
                _matcher(state, bindings)  # join/predicate errors come first
                raise ExecutionError(_message)

            return run_bad_table
        ti = self.table_index.get(table)
        if ti is None:
            # Chain contains an unknown table: the matcher always raises.
            def run_bad_chain(state, bindings, _matcher=matcher):
                _matcher(state, bindings)
                raise AssertionError("unreachable: matcher must raise")  # pragma: no cover

            return run_bad_chain
        ci = self.column_offsets[table].get(stmt.attribute.name)
        if ci is None:
            message = f"unknown column {stmt.attribute.name!r} for table {table!r}"

            def run_bad_column(
                state, bindings, _matcher=matcher, _value=value_fn, _message=message
            ):
                _matcher(state, bindings)
                _value(bindings)  # value errors come before the column check
                raise InstanceError(_message)

            return run_bad_column

        def run(state, bindings, _matcher=matcher, _value=value_fn, _ti=ti, _pi=pi, _ci=ci):
            matches = _matcher(state, bindings)
            value = _value(bindings)
            rowids = {j[_pi].rowid for j in matches}
            if rowids:
                for r in state.tables[_ti]:
                    if r.rowid in rowids:
                        r.vals[_ci] = value

        return run

    # -------------------------------------------------------------- functions
    def compile_function(self, func: Function) -> CompiledFunction:
        param_names = tuple(p.name for p in func.params)
        params = frozenset(param_names)
        if isinstance(func, QueryFunction):
            plan = self.compile_query(func.query, params)

            def run_query(state, bindings, _plan=plan):
                return _plan(state, bindings, {})

            return CompiledFunction(func.name, param_names, True, run_query)
        assert isinstance(func, UpdateFunction)
        stmt_fns = []
        for stmt in func.statements:
            if isinstance(stmt, Insert):
                stmt_fns.append(self.compile_insert(stmt, params))
            elif isinstance(stmt, Delete):
                stmt_fns.append(self.compile_delete(stmt, params))
            elif isinstance(stmt, Update):
                stmt_fns.append(self.compile_update(stmt, params))
            else:
                raise TypeError(f"unknown statement node {stmt!r}")

        def run_update(state, bindings, _stmts=tuple(stmt_fns)):
            for s in _stmts:
                s(state, bindings)

        return CompiledFunction(func.name, param_names, False, run_update)


@dataclass
class CompilerStats:
    """Cache counters of one :class:`ProgramCompiler`.

    The counters are cumulative over the compiler's lifetime; consumers that
    report per-run numbers over a *shared* compiler (the session core, the
    migration service) snapshot them at run start and report the delta.  A
    program-cache hit counts as one hit per function it serves — the number
    of compiled closures reused, which is the quantity cross-job sharing is
    measured by.
    """

    #: Compiled function closures served from cache (including via whole-program hits).
    function_hits: int = 0
    #: Functions actually compiled.
    function_misses: int = 0
    #: Whole-program cache hits.
    program_hits: int = 0

    def snapshot(self) -> "CompilerStats":
        return dataclasses.replace(self)


class ProgramCompiler:
    """Compiles programs with per-function and per-program caching.

    The sketch-completion loop instantiates thousands of candidates that
    share immutable per-function ASTs (``MemoizedInstantiator``), so compiled
    functions are cached by ``(schema signature, function)`` — functions by
    structural value, schemas by a structural signature (name, tables,
    columns, types) because compiled closures embed only table indices and
    column offsets, which that signature determines.  Structural keying also
    lets parallel workers reuse compilations across tasks, where every
    pickled task carries fresh but identical schema objects.  Cache keys
    hold strong references; all caches are wholesale-cleared at a size cap,
    which bounds memory without bookkeeping on the hot path.
    """

    def __init__(self, max_entries: int = 4096):
        self.max_entries = max_entries
        self.stats = CompilerStats()
        self._functions: dict[tuple, CompiledFunction] = {}
        self._programs: dict[Program, CompiledProgram] = {}
        self._schema_sigs: dict[Schema, tuple] = {}  # identity-keyed memo
        self._schema_compilers: dict[tuple, _FunctionCompiler] = {}

    @staticmethod
    def _schema_signature(schema: Schema) -> tuple:
        return (
            schema.name,
            tuple(
                (name, tuple(schema.table(name).columns.items()))
                for name in schema.table_names
            ),
        )

    def _compiler_for(self, schema: Schema) -> _FunctionCompiler:
        sig = self._schema_sigs.get(schema)
        if sig is None:
            if len(self._schema_sigs) >= self.max_entries:
                self._schema_sigs.clear()
            sig = self._schema_signature(schema)
            self._schema_sigs[schema] = sig
        fc = self._schema_compilers.get(sig)
        if fc is None:
            if len(self._schema_compilers) >= self.max_entries:
                self._schema_compilers.clear()
            fc = _FunctionCompiler(schema)
            self._schema_compilers[sig] = fc
        return fc

    def compile_program(self, program: Program) -> CompiledProgram:
        compiled = self._programs.get(program)
        if compiled is not None:
            self.stats.program_hits += 1
            self.stats.function_hits += len(compiled.functions)
            return compiled
        fc = self._compiler_for(program.schema)
        sig = self._schema_sigs[program.schema]
        functions: dict[str, CompiledFunction] = {}
        for func in program:
            key: Optional[tuple]
            try:
                cf = self._functions.get((sig, func))
                key = (sig, func)
            except TypeError:  # unhashable constant somewhere in the AST
                cf, key = None, None
            if cf is None:
                self.stats.function_misses += 1
                cf = fc.compile_function(func)
                if key is not None:
                    if len(self._functions) >= self.max_entries:
                        self._functions.clear()
                    self._functions[key] = cf
            else:
                self.stats.function_hits += 1
            functions[func.name] = cf
        compiled = CompiledProgram(program.name, fc.num_tables, functions)
        if len(self._programs) >= self.max_entries:
            self._programs.clear()
        self._programs[program] = compiled
        return compiled


def make_runner(execution_backend: str, compiler: Optional[ProgramCompiler] = None):
    """Validate a backend name and build its sequence runner.

    Returns ``run(program, sequence)``, which executes an invocation
    sequence from the empty database under the chosen backend (closing over
    the shared *compiler*, or a private one, when compiled).  This is the
    single dispatch point the tester and verifier share, so backend
    semantics cannot drift between them.
    """
    if execution_backend not in EXECUTION_BACKENDS:
        raise ValueError(
            f"unknown execution backend {execution_backend!r}; known: {EXECUTION_BACKENDS}"
        )
    if execution_backend == "compiled":
        owned = compiler if compiler is not None else ProgramCompiler()

        def run(program: Program, sequence, _compiler=owned):
            return _compiler.compile_program(program).run_sequence(sequence)

        return run
    from repro.engine.interpreter import run_invocation_sequence

    return lambda program, sequence: run_invocation_sequence(program, sequence)


def compile_program(program: Program) -> CompiledProgram:
    """One-shot convenience compile (no cross-program cache)."""
    return ProgramCompiler().compile_program(program)


def run_sequence_compiled(program: Program, sequence) -> list[list[tuple]]:
    """Compiled counterpart of :func:`repro.engine.interpreter.run_invocation_sequence`."""
    return compile_program(program).run_sequence(sequence)
