"""Relational execution engine for database programs.

Three backends share one semantics: the tree-walk interpreter (the
reference, :mod:`repro.engine.interpreter`); the compiled backend
(:mod:`repro.engine.compiler`), which translates a program once into Python
closures with hash joins, slotted rows and compile-time column offsets; and
the columnar backend (:mod:`repro.engine.columnar`), which stores tables as
parallel column lists with cached key indexes and adds batch kernels for
the candidate-screening loop.  ``tests/test_compiled.py`` and
``tests/test_columnar.py`` pin their output and error equivalence.
"""

from repro.engine.compiled import CompiledProgram, CompiledState, CRow
from repro.engine.compiler import (
    EXECUTION_BACKENDS,
    ProgramCompiler,
    compile_program,
    make_batch_runner,
    make_runner,
    run_sequence_compiled,
)
from repro.engine.evaluator import Evaluator
from repro.engine.interpreter import InvocationError, ProgramInterpreter, run_invocation_sequence
from repro.engine.joins import ExecutionError, JoinedRow, evaluate_join
from repro.engine.predicates import compare, evaluate_predicate, resolve_operand
from repro.engine.uid import UidGenerator, UniqueValue

__all__ = [
    "CRow",
    "CompiledProgram",
    "CompiledState",
    "EXECUTION_BACKENDS",
    "Evaluator",
    "ExecutionError",
    "InvocationError",
    "JoinedRow",
    "ProgramCompiler",
    "ProgramInterpreter",
    "UidGenerator",
    "UniqueValue",
    "compare",
    "compile_program",
    "evaluate_join",
    "make_batch_runner",
    "make_runner",
    "evaluate_predicate",
    "resolve_operand",
    "run_invocation_sequence",
    "run_sequence_compiled",
]
