"""Relational execution engine for database programs."""

from repro.engine.evaluator import Evaluator
from repro.engine.interpreter import InvocationError, ProgramInterpreter, run_invocation_sequence
from repro.engine.joins import ExecutionError, JoinedRow, evaluate_join
from repro.engine.predicates import compare, evaluate_predicate, resolve_operand
from repro.engine.uid import UidGenerator, UniqueValue

__all__ = [
    "Evaluator",
    "ExecutionError",
    "InvocationError",
    "JoinedRow",
    "ProgramInterpreter",
    "UidGenerator",
    "UniqueValue",
    "compare",
    "evaluate_join",
    "evaluate_predicate",
    "resolve_operand",
    "run_invocation_sequence",
]
