"""Predicate evaluation over joined rows.

Predicates compare attributes, constants and function parameters, and may
contain ``IN`` sub-queries.  Comparison semantics follow the paper's simple
value model: equality is structural; ordering comparisons are only defined
between two values of the same orderable type and evaluate to ``False``
otherwise (in particular when one side is NULL or a fresh UID).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.engine.joins import ExecutionError, JoinedRow
from repro.engine.uid import UniqueValue
from repro.lang.ast import (
    And,
    AttrRef,
    CompareOp,
    Comparison,
    Const,
    InQuery,
    Not,
    Operand,
    Or,
    Predicate,
    TruePred,
    Var,
)

#: Type of the callback used to evaluate ``IN`` sub-queries: it receives the
#: query AST and returns the list of result tuples.
SubqueryEvaluator = Callable[[Any], list[tuple]]


def resolve_operand(operand: Operand, row: JoinedRow | None, bindings: dict[str, Any]) -> Any:
    """Resolve an operand to a concrete value."""
    if isinstance(operand, Const):
        return operand.value
    if isinstance(operand, Var):
        if operand.name not in bindings:
            raise ExecutionError(f"unbound parameter {operand.name!r}")
        return bindings[operand.name]
    if isinstance(operand, AttrRef):
        if row is None:
            raise ExecutionError(f"attribute {operand.attribute} used outside a row context")
        return row.value(operand.attribute)
    raise TypeError(f"unknown operand {operand!r}")


def _orderable(left: Any, right: Any) -> bool:
    if left is None or right is None:
        return False
    if isinstance(left, UniqueValue) or isinstance(right, UniqueValue):
        return False
    if isinstance(left, bool) or isinstance(right, bool):
        return False
    numeric = (int, float)
    if isinstance(left, numeric) and isinstance(right, numeric):
        return True
    if isinstance(left, str) and isinstance(right, str):
        return True
    return False


def compare(left: Any, op: CompareOp, right: Any) -> bool:
    """Apply a comparison operator to two concrete values."""
    if op is CompareOp.EQ:
        return left == right
    if op is CompareOp.NE:
        return left != right
    if not _orderable(left, right):
        return False
    if op is CompareOp.LT:
        return left < right
    if op is CompareOp.LE:
        return left <= right
    if op is CompareOp.GT:
        return left > right
    if op is CompareOp.GE:
        return left >= right
    raise TypeError(f"unknown comparison operator {op!r}")


def evaluate_predicate(
    pred: Predicate,
    row: JoinedRow | None,
    bindings: dict[str, Any],
    subquery: SubqueryEvaluator | None = None,
) -> bool:
    """Evaluate *pred* on *row* under parameter *bindings*."""
    if isinstance(pred, TruePred):
        return True
    if isinstance(pred, Comparison):
        left = resolve_operand(pred.left, row, bindings)
        right = resolve_operand(pred.right, row, bindings)
        return compare(left, pred.op, right)
    if isinstance(pred, InQuery):
        if subquery is None:
            raise ExecutionError("IN sub-query used without a sub-query evaluator")
        value = resolve_operand(pred.operand, row, bindings)
        results = subquery(pred.query)
        return any(len(t) >= 1 and t[0] == value for t in results)
    if isinstance(pred, And):
        return evaluate_predicate(pred.left, row, bindings, subquery) and evaluate_predicate(
            pred.right, row, bindings, subquery
        )
    if isinstance(pred, Or):
        return evaluate_predicate(pred.left, row, bindings, subquery) or evaluate_predicate(
            pred.right, row, bindings, subquery
        )
    if isinstance(pred, Not):
        return not evaluate_predicate(pred.operand, row, bindings, subquery)
    raise TypeError(f"unknown predicate node {pred!r}")
