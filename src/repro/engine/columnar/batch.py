"""Batch execution kernels over columnar programs.

Two vectorized entry points, both returning per-item **outcomes** — ``("ok",
outputs)`` or ``("err", exception)`` — aligned with their input order:

* :func:`run_sequences_batch` — one program, many invocation sequences.  The
  sequences are arranged into a prefix trie and executed by depth-first walk:
  a shared prefix runs **once**, and the copy-on-write
  :meth:`~repro.engine.columnar.storage.ColumnarState.fork` splits the state
  only at branch points where an update runs (query invocations mutate
  nothing and execute forkless on the shared state, so a fan of sibling
  queries — the dominant shape in screening pools — reuses one chain
  materialization; the last update child of every node inherits the parent
  state without copying).  Enumerated counterexample sequences share long
  prefixes by construction (``SequenceGenerator`` emits them in product
  order), so this amortizes nearly all state setup and update execution.
* :func:`run_programs_batch` — many programs, one sequence.  Programs are
  grouped per step by the *identity* of the function object the step resolves
  to; candidates that share compiled closures (the instantiator's AST sharing
  plus the compiler's function cache make this common) execute each shared
  step once.

Both kernels are exactly outcome-equivalent to running every item through
``program.run_sequence`` on its own:

* programs are deterministic, so an error raised while executing a trie node
  is the error every sequence through that node would raise; the exception
  object is recorded for the whole subtree and execution of that branch
  stops, exactly where the scalar runs would have stopped;
* UID and rowid counters are forked by value, so each branch allocates
  exactly the fresh values its scalar run would allocate;
* a sequence whose invocations are unhashable (list-valued arguments can
  reach here through constant pools) cannot be a trie key and falls back to
  a scalar ``run_sequence``, preserving outcomes trivially.

The optional ``interrupt`` hook is polled before every trie-node execution
and every scalar fallback; it must *raise* to abort (the equivalence layer
passes a closure raising ``TestingInterrupted``).  Whatever it raises
propagates out of the kernel — it is never folded into an outcome.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

from repro.engine.columnar.storage import ColumnarProgram, ColumnarState

Outcome = tuple[str, Any]


class _Node:
    __slots__ = ("children", "ends", "plan")

    def __init__(self):
        self.children: dict = {}
        self.ends: list[int] = []
        #: Inline cache of the children classified against one program's
        #: function table — see :func:`_classify`.
        self.plan = None


def _fail_subtree(node: _Node, error: BaseException, outcomes: list) -> None:
    stack = [node]
    while stack:
        n = stack.pop()
        for i in n.ends:
            outcomes[i] = ("err", error)
        stack.extend(n.children.values())


def _classify(children: dict, functions: dict) -> tuple:
    """Resolve a node's child invocations against one function table.

    Returns ``(functions, queries, mutators)``: *queries* holds
    ``(child, run, bindings)`` for well-formed query invocations, *mutators*
    ``(child, run, bindings, invocation)`` for everything else (``run`` is
    ``None`` for unknown names and arity mismatches, which must go through
    ``program.call`` for its exact error).  The result is cached on the node
    keyed by the functions dict (checked by identity), so replaying a
    memoized trie against the same program — every screening chunk runs the
    source and each candidate over identical tries — resolves and binds each
    invocation once instead of once per walk.  Bindings dicts are safe to
    share across walks: compiled closures only ever read them.
    """
    queries = []
    mutators = []
    for invocation, child in children.items():
        func = functions.get(invocation[0])
        if func is not None and len(invocation[1]) == len(func.param_names):
            bindings = dict(zip(func.param_names, invocation[1]))
            if func.is_query:
                queries.append((child, func.run, bindings))
            else:
                mutators.append((child, func.run, bindings, invocation))
        else:
            mutators.append((child, None, None, invocation))
    return (functions, tuple(queries), tuple(mutators))


def build_trie(
    sequences: Sequence[Sequence[tuple[str, Sequence[Any]]]],
) -> tuple[_Node, list[int]]:
    """Arrange *sequences* into a prefix trie.

    Returns the root node plus the indices of sequences that cannot be trie
    keys (unhashable argument values) and must run through the scalar
    fallback.  The trie depends only on the sequences, never on a program,
    so callers screening a stable pool may build it once and replay it
    against many programs (see :class:`ColumnarBatchRunner`); the kernel
    never mutates the nodes.
    """
    root = _Node()
    scalar: list[int] = []
    for i, seq in enumerate(sequences):
        node = root
        try:
            for invocation in seq:
                child = node.children.get(invocation)
                if child is None:
                    child = node.children[invocation] = _Node()
                node = child
        except TypeError:  # unhashable argument value
            scalar.append(i)
            continue
        node.ends.append(i)
    return root, scalar


def run_sequences_batch(
    program: ColumnarProgram,
    sequences: Sequence[Sequence[tuple[str, Sequence[Any]]]],
    interrupt: Optional[Callable[[], None]] = None,
    trie: Optional[tuple[_Node, list[int]]] = None,
) -> list[Outcome]:
    """Execute *program* against every sequence, sharing prefix work.

    Returns one outcome per sequence: ``("ok", outputs)`` with the same
    outputs ``program.run_sequence`` would return, or ``("err", e)`` with the
    exception it would raise.  *trie* is an optional prebuilt
    :func:`build_trie` result for exactly these sequences.
    """
    outcomes: list[Optional[Outcome]] = [None] * len(sequences)
    root, scalar = trie if trie is not None else build_trie(sequences)

    functions = program.functions

    def walk(node: _Node, state: ColumnarState, outputs: list, owned: bool) -> None:
        for i in node.ends:
            # Recorded before descending: children mutate state, and the
            # last child extends this very outputs list.
            outcomes[i] = ("ok", list(outputs))
        children = node.children
        if not children:
            return
        # Query invocations never mutate the state (queries write no tables
        # and allocate no UIDs), so they run directly on the shared parent
        # state with no fork — sibling queries then reuse one chain
        # materialization through the state's chain cache.  Everything else
        # (updates, unknown names, wrong arities) goes through the fork
        # discipline: the last such child inherits the state, but only when
        # this walk *owns* it (a query subtree runs on a state its ancestors
        # still need, and must fork before any mutation).
        plan = node.plan
        if plan is None or plan[0] is not functions:
            plan = node.plan = _classify(children, functions)
        queries, mutators = plan[1], plan[2]
        last_query = len(queries) - 1
        for k, (child, run, bindings) in enumerate(queries):
            if interrupt is not None:
                interrupt()
            try:
                result = run(state, bindings)
            except Exception as error:
                _fail_subtree(child, error, outcomes)
                continue
            walk(child, state, outputs + [result],
                 owned and not mutators and k == last_query)
        last = len(mutators) - 1
        for k, (child, run, bindings, invocation) in enumerate(mutators):
            if interrupt is not None:
                interrupt()
            if k == last and owned:
                child_state, child_outputs = state, outputs
            else:
                child_state, child_outputs = state.fork(), list(outputs)
            try:
                if run is not None:
                    run(child_state, bindings)
                    result = None
                else:
                    # Unknown name or arity mismatch: go through the program
                    # so the error class and message match the scalar path.
                    result = program.call(child_state, invocation[0], invocation[1])
            except Exception as error:
                _fail_subtree(child, error, outcomes)
                continue
            if result is not None:
                child_outputs.append(result)
            walk(child, child_state, child_outputs, True)

    walk(root, program.new_state(), [], True)

    for i in scalar:
        if interrupt is not None:
            interrupt()
        try:
            outcomes[i] = ("ok", program.run_sequence(sequences[i]))
        except Exception as error:
            outcomes[i] = ("err", error)
    return outcomes


def run_programs_batch(
    programs: Sequence[ColumnarProgram],
    sequence: Sequence[tuple[str, Sequence[Any]]],
    interrupt: Optional[Callable[[], None]] = None,
) -> list[Outcome]:
    """Execute every program against *sequence*, sharing identical steps.

    Programs are partitioned step by step: all programs whose current
    invocation resolves to the **same function object** advance through one
    shared execution (their states are necessarily identical, having run the
    same closures from the same empty database).  Unknown-function steps are
    keyed by ``(name, program name)`` because the resulting ``KeyError``
    message embeds the program's name.
    """
    outcomes: list[Optional[Outcome]] = [None] * len(programs)
    sequence = list(sequence)

    def run_group(step: int, indices: list[int], state: ColumnarState, outputs: list) -> None:
        if step == len(sequence):
            for i in indices:
                outcomes[i] = ("ok", list(outputs))
            return
        name, args = sequence[step]
        buckets: dict = {}
        for i in indices:
            func = programs[i].functions.get(name)
            key = id(func) if func is not None else ("missing", name, programs[i].name)
            bucket = buckets.get(key)
            if bucket is None:
                buckets[key] = [i]
            else:
                bucket.append(i)
        last = len(buckets) - 1
        for k, bucket in enumerate(buckets.values()):
            if interrupt is not None:
                interrupt()
            if k == last:
                child_state, child_outputs = state, outputs
            else:
                child_state, child_outputs = state.fork(), list(outputs)
            try:
                result = programs[bucket[0]].call(child_state, name, args)
            except Exception as error:
                for i in bucket:
                    outcomes[i] = ("err", error)
                continue
            if result is not None:
                child_outputs.append(result)
            run_group(step + 1, bucket, child_state, child_outputs)

    groups: dict[tuple[int, ...], list[int]] = {}
    for i, program in enumerate(programs):
        groups.setdefault(program.table_widths, []).append(i)
    for widths, indices in groups.items():
        run_group(0, indices, ColumnarState(widths), [])
    return outcomes


class ColumnarBatchRunner:
    """Batch-execution facade bound to a compiler's columnar cache.

    The equivalence layer holds one of these (see ``make_batch_runner``) and
    feeds it AST programs; compilation goes through the shared
    ``ProgramCompiler`` so scalar and batched paths reuse the same compiled
    artefacts and the same compiler statistics.

    The runner also memoizes prefix tries: pool screening replays the same
    sequence chunks against every candidate, so the trie for a chunk is
    built once and reused until the pool re-sorts.  Reuse is guarded by a
    full content comparison against the memoized chunk — cheap, because the
    pool hands out slices of its cached snapshot and comparing identical
    sequence tuples short-circuits on identity — so a reordered or mutated
    chunk can never replay a stale trie.
    """

    #: Distinct chunk shapes alive per screen (small first chunk, grown
    #: follow-ups, the verifier's enumeration chunks); a handful suffices.
    TRIE_MEMO_SLOTS = 8

    def __init__(self, compiler):
        self.compiler = compiler
        self._tries: list = []

    def _trie_for(self, sequences):
        for slot, (memo_sequences, trie) in enumerate(self._tries):
            if memo_sequences == sequences:
                if slot:  # keep the hottest chunks at the front
                    self._tries.insert(0, self._tries.pop(slot))
                return trie
        trie = build_trie(sequences)
        self._tries.insert(0, (list(sequences), trie))
        del self._tries[self.TRIE_MEMO_SLOTS:]
        return trie

    def run_sequences(
        self,
        program,
        sequences,
        interrupt: Optional[Callable[[], None]] = None,
    ) -> list[Outcome]:
        compiled = self.compiler.compile_columnar(program)
        return run_sequences_batch(compiled, sequences, interrupt, self._trie_for(sequences))

    def run_programs(
        self,
        programs,
        sequence,
        interrupt: Optional[Callable[[], None]] = None,
    ) -> list[Outcome]:
        compiled = [self.compiler.compile_columnar(p) for p in programs]
        return run_programs_batch(compiled, sequence, interrupt)
