"""Columnar execution backend: column-list storage plus batch kernels.

The third execution backend (after the tree-walking interpreter and the
row-at-a-time compiled closures).  Same semantics — identical outputs, UID
allocation order, and error classes, differentially pinned in
``tests/test_columnar.py`` — with a storage layout and batch entry points
built for the candidate-screening hot loop:

* :mod:`~repro.engine.columnar.storage` — tables as parallel column lists
  with cached key indexes and copy-on-write state forks;
* :mod:`~repro.engine.columnar.compiler` — the AST-to-closure compiler,
  a semantics-exact port of the compiled backend's;
* :mod:`~repro.engine.columnar.batch` — trie kernels running one program
  against many sequences (shared prefixes) or many programs against one
  sequence (shared function objects).

Use ``repro.engine.compiler.make_runner("columnar")`` /
``make_batch_runner("columnar")`` rather than reaching in here directly.
"""

from repro.engine.columnar.batch import (
    ColumnarBatchRunner,
    run_programs_batch,
    run_sequences_batch,
)
from repro.engine.columnar.compiler import ColumnarFunctionCompiler
from repro.engine.columnar.storage import (
    ColumnarFunction,
    ColumnarProgram,
    ColumnarState,
    ColumnTable,
)

__all__ = [
    "ColumnTable",
    "ColumnarBatchRunner",
    "ColumnarFunction",
    "ColumnarFunctionCompiler",
    "ColumnarProgram",
    "ColumnarState",
    "run_programs_batch",
    "run_sequences_batch",
]
