"""Runtime of the columnar execution backend.

Where the compiled backend stores a table as a list of slotted row objects
(:class:`~repro.engine.compiled.CRow`), this backend stores it as parallel
**column lists** plus a rowid column:

* :class:`ColumnTable` — ``cols[offset][position]`` holds the cell values of
  one column, ``rowids[position]`` the stable row identity.  Hash-join build
  sides become cached **key indexes** (value → row positions) that survive
  until the table mutates, so repeated executions of the same join against
  the same instance pay the index build once;
* :class:`ColumnarState` — the per-execution database: tables, UID generator,
  rowid counter, and a per-state cache of join-chain results (join chains
  carry no parameter references, so their row sets only change when a table
  does).  States support cheap **copy-on-write forks**: a fork shares every
  column list until one side writes, which is what makes the batch kernels
  (:mod:`repro.engine.columnar.batch`) able to share an execution prefix
  across many invocation sequences;
* :class:`ColumnarFunction` / :class:`ColumnarProgram` — the executable
  artefacts, mirroring :class:`~repro.engine.compiled.CompiledProgram`
  call/run_sequence semantics exactly (same outputs, same error classes,
  fresh empty database per ``run_sequence``).

Joined rows are tuples of row *positions* (ints) aligned to the join chain's
table order; every attribute access compiles to
``state.tables[table_index].cols[column_offset][jrow[chain_position]]``.

The copy-on-write discipline is sound because cell values are never mutated
in place: updates assign ``cols[offset][position] = value``, deletes rebuild
the column lists, inserts append.  All mutations go through the state methods
below, which also invalidate the affected table's key indexes and the state's
chain cache.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from repro.engine.interpreter import InvocationError
from repro.engine.uid import UidGenerator


class ColumnTable:
    """One table as parallel column lists plus a rowid column."""

    __slots__ = ("cols", "rowids", "shared", "_indexes")

    def __init__(self, num_cols: int):
        self.cols: list[list] = [[] for _ in range(num_cols)]
        self.rowids: list[int] = []
        #: Set when a state fork shares this table; the owning state copies
        #: before writing (see :meth:`ColumnarState.writable`).
        self.shared = False
        self._indexes: dict[tuple[int, ...], dict] = {}

    def key_index(self, offsets: tuple[int, ...]) -> dict:
        """Cached hash index ``key -> [positions]`` over the given columns.

        Raises ``TypeError`` when a key value is unhashable (the caller falls
        back to the nested-loop join, like the compiled backend); a partially
        built index is never cached.  Index dicts are immutable once built,
        so table copies share them until either side mutates.
        """
        index = self._indexes.get(offsets)
        if index is None:
            index = {}
            if len(offsets) == 1:
                for position, value in enumerate(self.cols[offsets[0]]):
                    index.setdefault(value, []).append(position)
            else:
                key_cols = [self.cols[o] for o in offsets]
                for position in range(len(self.rowids)):
                    key = tuple(col[position] for col in key_cols)
                    index.setdefault(key, []).append(position)
            self._indexes[offsets] = index
        return index

    def copy(self) -> "ColumnTable":
        clone = ColumnTable.__new__(ColumnTable)
        clone.cols = [list(col) for col in self.cols]
        clone.rowids = list(self.rowids)
        clone.shared = False
        # Content is identical, so built indexes stay valid; the outer dict is
        # fresh per table, and inner index dicts are never mutated after
        # construction, so sharing them is safe.
        clone._indexes = dict(self._indexes)
        return clone

    def __len__(self) -> int:
        return len(self.rowids)


class ColumnarState:
    """Mutable database state for one execution of a columnar program."""

    __slots__ = ("tables", "uids", "next_rowid", "chain_cache")

    def __init__(self, table_widths: Sequence[int]):
        self.tables: list[ColumnTable] = [ColumnTable(width) for width in table_widths]
        self.uids = UidGenerator()
        self.next_rowid = 1
        #: Join-chain results memoized per state (cleared on any mutation).
        #: Sound because chain conditions are attribute pairs — no parameter
        #: or constant operands — so a chain's row set is a function of the
        #: instance alone.
        self.chain_cache: dict = {}

    # ------------------------------------------------------------------ forks
    def fork(self) -> "ColumnarState":
        """A copy-on-write clone sharing all column storage with this state.

        Both sides keep working: each copies a table privately before its
        first write to it.  UID and rowid counters are copied by value so the
        branches allocate exactly what independent scalar runs would.
        """
        clone = ColumnarState.__new__(ColumnarState)
        for table in self.tables:
            table.shared = True
        clone.tables = list(self.tables)
        clone.uids = self.uids.fork()
        clone.next_rowid = self.next_rowid
        clone.chain_cache = dict(self.chain_cache)
        return clone

    def writable(self, table_index: int) -> ColumnTable:
        table = self.tables[table_index]
        if table.shared:
            table = table.copy()
            self.tables[table_index] = table
        return table

    # -------------------------------------------------------------- mutations
    def append_row(self, table_index: int, vals: Iterable[Any]) -> None:
        table = self.writable(table_index)
        for col, value in zip(table.cols, vals):
            col.append(value)
        table.rowids.append(self.next_rowid)
        self.next_rowid += 1
        table._indexes = {}
        self.chain_cache.clear()

    def delete_rows(self, table_index: int, rowid_set: set[int]) -> None:
        table = self.writable(table_index)
        old_rowids = table.rowids
        keep = [p for p, rowid in enumerate(old_rowids) if rowid not in rowid_set]
        if len(keep) == len(old_rowids):
            return
        table.rowids = [old_rowids[p] for p in keep]
        table.cols = [[col[p] for p in keep] for col in table.cols]
        table._indexes = {}
        self.chain_cache.clear()

    def set_cells(self, table_index: int, offset: int, positions: Iterable[int], value) -> None:
        table = self.writable(table_index)
        col = table.cols[offset]
        for position in positions:
            col[position] = value
        table._indexes = {}
        self.chain_cache.clear()


class ColumnarFunction:
    """One compiled function: parameter metadata plus the executable closure.

    Mirrors :class:`~repro.engine.compiled.CompiledFunction`; ``run`` takes
    ``(state, bindings)`` and is pure with respect to everything but *state*.
    """

    __slots__ = ("name", "param_names", "is_query", "run")

    def __init__(
        self,
        name: str,
        param_names: tuple[str, ...],
        is_query: bool,
        run: Callable[[ColumnarState, dict], Any],
    ):
        self.name = name
        self.param_names = param_names
        self.is_query = is_query
        self.run = run


class ColumnarProgram:
    """A program compiled to columnar closures, executable from empty state."""

    __slots__ = ("name", "table_widths", "functions")

    def __init__(
        self,
        name: str,
        table_widths: tuple[int, ...],
        functions: dict[str, ColumnarFunction],
    ):
        self.name = name
        self.table_widths = table_widths
        self.functions = functions

    def new_state(self) -> ColumnarState:
        return ColumnarState(self.table_widths)

    def call(self, state: ColumnarState, name: str, args: Sequence[Any] = ()) -> list[tuple] | None:
        """Invoke one function against *state* (mirrors ``CompiledProgram.call``)."""
        func = self.functions.get(name)
        if func is None:
            # Same error class as Program.function on an unknown name.
            raise KeyError(f"program {self.name!r} has no function {name!r}")
        if len(args) != len(func.param_names):
            raise InvocationError(
                f"function {name!r} expects {len(func.param_names)} arguments, got {len(args)}"
            )
        bindings = dict(zip(func.param_names, args))
        if func.is_query:
            return func.run(state, bindings)
        func.run(state, bindings)
        return None

    def run_sequence(self, sequence: Iterable[tuple[str, Sequence[Any]]]) -> list[list[tuple]]:
        """Execute an invocation sequence from the empty database.

        Output- and error-equivalent to the interpreter and the compiled
        backend on the same program (pinned by ``tests/test_columnar.py``).
        """
        state = ColumnarState(self.table_widths)
        outputs: list[list[tuple]] = []
        for name, args in sequence:
            result = self.call(state, name, args)
            if result is not None:
                outputs.append(result)
        return outputs
