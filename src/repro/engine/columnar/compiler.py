"""Compile program ASTs into closures over columnar storage.

A semantics-preserving port of :class:`repro.engine.compiler._FunctionCompiler`
to the columnar data layer (:mod:`repro.engine.columnar.storage`).  The
contract is the same one the compiled backend holds against the interpreter —
identical outputs (row order, UID allocation order) and identical error
classes raised at identical points — plus two columnar-only optimizations
that are invisible to that contract:

* join chains memoize their result per state (``state.chain_cache``): chain
  conditions are attribute pairs, never parameters, so a chain's row set only
  changes when a table mutates.  Within one invocation sequence — and across
  the branches of a batch trie (:mod:`repro.engine.columnar.batch`) — every
  query/delete/update over the same chain shape shares one join;
* hash-join build sides use the table's cached ``key_index`` (position
  buckets), so the index survives across invocations instead of being rebuilt
  per join step.  Local (same-table) equality conditions are applied per
  bucket rather than pre-filtering the build side; the output row set and
  order are identical.

Joined rows are tuples of row positions; see the storage module docstring.
All error-ordering subtleties of the compiled backend are preserved: deferred
self-join/unknown-table/out-of-chain errors, lazy per-row unavailable
attribute errors, TypeError → nested-loop degradation for unhashable keys,
insert union-find with interpreter-order fresh-UID allocation, delete rowid
capture before any deletion applies, and the matcher → value → column error
order of update statements.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Optional

from repro.datamodel.instance import InstanceError
from repro.datamodel.schema import Attribute, Schema, SchemaError
from repro.engine.columnar.storage import ColumnarFunction, ColumnarProgram
from repro.engine.joins import ExecutionError
from repro.engine.predicates import compare
from repro.lang.ast import (
    And,
    AttrRef,
    CompareOp,
    Comparison,
    Const,
    Delete,
    Function,
    InQuery,
    Insert,
    JoinChain,
    Not,
    Or,
    Projection,
    QueryFunction,
    Selection,
    TruePred,
    Update,
    UpdateFunction,
    Var,
)

#: Chain-cache keys are process-unique small integers, interned per compiler
#: and chain shape: two functions compiled by the same compiler over the same
#: ``(tables, conditions)`` share one key (and therefore one memoized join
#: per state), while different compilers — whose structurally equal chains
#: may mean different table indices — can never collide.  An int key also
#: makes the per-query ``chain_cache`` lookup a trivial hash, where the
#: previous ``(token, tables, conditions)`` tuples re-hashed nested attribute
#: tuples on every call.
_CHAIN_KEYS = itertools.count()


def _raise_execution(message: str):
    def run(*_args, **_kwargs):
        raise ExecutionError(message)

    return run


class ColumnarFunctionCompiler:
    """Compiles the functions of one schema against columnar storage."""

    def __init__(self, schema: Schema):
        self.schema = schema
        self.table_index: dict[str, int] = {name: i for i, name in enumerate(schema.table_names)}
        self.column_offsets: dict[str, dict[str, int]] = {
            name: {col: i for i, col in enumerate(schema.table(name).columns)}
            for name in schema.table_names
        }
        self.num_tables = len(self.table_index)
        self.table_widths = tuple(
            len(self.column_offsets[name]) for name in schema.table_names
        )
        self._subquery_slots = 0
        self._chain_keys: dict = {}

    # ------------------------------------------------------------- extractors
    def _cell_spec(self, attr: Attribute, pos: dict[str, int]) -> Optional[tuple[int, int, int]]:
        """``(table_index, column_offset, chain_position)`` or ``None``."""
        pi = pos.get(attr.table)
        if pi is None:
            return None
        ci = self.column_offsets.get(attr.table, {}).get(attr.name)
        if ci is None:
            return None
        return (self.table_index[attr.table], ci, pi)

    def _cell_extractor(self, attr: Attribute, pos: dict[str, int]):
        """``(state, jrow) -> value`` for one attribute of a chain's row tuple.

        Unresolvable attributes get a closure raising the interpreter's
        "not available in joined row" error when (and only when) a row
        reaches it.
        """
        spec = self._cell_spec(attr, pos)
        if spec is not None:
            ti, ci, pi = spec
            return lambda state, j, _ti=ti, _ci=ci, _pi=pi: state.tables[_ti].cols[_ci][j[_pi]]
        message = f"attribute {attr} not available in joined row"

        def unavailable(_state, _j, _message=message):
            raise ExecutionError(_message)

        return unavailable

    def _row_operand(self, operand, pos: dict[str, int], params: frozenset[str]):
        """``(state, jrow, bindings) -> value`` for predicate operands."""
        if isinstance(operand, Const):
            return lambda _s, _j, _b, _v=operand.value: _v
        if isinstance(operand, Var):
            if operand.name not in params:
                return _raise_execution(f"unbound parameter {operand.name!r}")
            return lambda _s, _j, b, _n=operand.name: b[_n]
        if isinstance(operand, AttrRef):
            extractor = self._cell_extractor(operand.attribute, pos)
            return lambda s, j, _b, _ex=extractor: _ex(s, j)
        raise TypeError(f"unknown operand {operand!r}")

    def _rowless_operand(self, operand, params: frozenset[str]):
        """``bindings -> value`` for insert values and update right-hand sides."""
        if isinstance(operand, Const):
            return lambda _b, _v=operand.value: _v
        if isinstance(operand, Var):
            if operand.name not in params:
                return _raise_execution(f"unbound parameter {operand.name!r}")
            return lambda b, _n=operand.name: b[_n]
        if isinstance(operand, AttrRef):
            return _raise_execution(
                f"attribute {operand.attribute} used outside a row context"
            )
        raise TypeError(f"unknown operand {operand!r}")

    # ------------------------------------------------------------ join chains
    def compile_chain(self, chain: JoinChain):
        """Compile to ``(plan, pos, key)``: ``plan(state) -> list`` of position tuples.

        ``pos`` maps each chain table to its slot in the position tuples.
        Chains the interpreter rejects at execution time compile to raising
        plans so the error still only surfaces when the function is invoked.
        Non-raising plans memoize their result in ``state.chain_cache`` under
        ``key`` (``None`` for raising plans), which is also handed to the
        caller so per-invocation closures can probe the cache directly
        without paying the plan call on a hit.
        """
        tables = chain.tables
        pos: dict[str, int] = {}
        for i, t in enumerate(tables):
            pos.setdefault(t, i)
        if len(pos) != len(tables):
            return (
                _raise_execution(
                    f"join chain {chain} repeats a table; self-joins are not supported"
                ),
                pos,
                None,
            )
        if tables[0] not in self.table_index:
            # The interpreter touches the first table's rows before anything
            # else, so this one *is* an immediate error.
            message = f"unknown table {tables[0]!r}"

            def unknown_first(_state, _message=message):
                raise InstanceError(_message)

            return unknown_first, pos, None

        pending = list(chain.conditions)
        joined = {tables[0]}

        def split(conditions):
            now, later = [], []
            for left, right in conditions:
                if left.table in joined and right.table in joined:
                    now.append((left, right))
                else:
                    later.append((left, right))
            return now, later

        first_conds, pending = split(pending)
        steps = []
        for next_table in tables[1:]:
            joined.add(next_table)
            now, pending = split(pending)
            if next_table not in self.table_index:
                # Deferred to this step position, after earlier per-row errors.
                message = f"unknown table {next_table!r}"

                def unknown_step(_state, _jrows, _message=message):
                    raise InstanceError(_message)

                steps.append(unknown_step)
            else:
                steps.append(self._compile_step(next_table, now, pos))
        if pending:
            # Raised only after the full join loop ran, exactly like the
            # interpreter (and the compiled backend's final raising step).
            steps.append(
                _raise_execution(
                    f"join chain {chain} has conditions over tables not in the chain: {pending}"
                )
            )

        first_filters = []
        for left, right in first_conds:
            lf = self._cell_extractor(left, pos)
            rf = self._cell_extractor(right, pos)
            first_filters.append((lf, rf))

        first_ti = self.table_index[tables[0]]
        # Chains are cached per *shape* within this compiler: two functions
        # selecting over the same chain share the memoized join.
        shape = (chain.tables, chain.conditions)
        cache_key = self._chain_keys.get(shape)
        if cache_key is None:
            cache_key = self._chain_keys[shape] = next(_CHAIN_KEYS)

        def plan(
            state,
            _ti=first_ti,
            _filters=tuple(first_filters),
            _steps=tuple(steps),
            _key=cache_key,
        ):
            cached = state.chain_cache.get(_key)
            if cached is not None:
                return cached
            jrows = [(p,) for p in range(len(state.tables[_ti].rowids))]
            for lf, rf in _filters:
                jrows = [j for j in jrows if lf(state, j) == rf(state, j)]
            for step in _steps:
                jrows = step(state, jrows)
            state.chain_cache[_key] = jrows
            return jrows

        return plan, pos, cache_key

    def _resolvable(self, attr: Attribute) -> bool:
        return attr.name in self.column_offsets.get(attr.table, {})

    def _compile_step(self, next_table: str, conds, pos: dict[str, int]):
        """One join step: extend each position tuple with a row of *next_table*."""
        nti = self.table_index[next_table]

        def nested(cond_evals):
            # The interpreter's loop: cross product, conditions evaluated in
            # order with short-circuit (so per-row errors fire identically).
            def step(state, jrows, _nti=nti, _evals=tuple(cond_evals)):
                count = len(state.tables[_nti].rowids)
                out = []
                for j in jrows:
                    for p in range(count):
                        cand = j + (p,)
                        for ev in _evals:
                            if not ev(state, cand):
                                break
                        else:
                            out.append(cand)
                return out

            return step

        def pair_eval(left, right):
            lf = self._cell_extractor(left, pos)
            rf = self._cell_extractor(right, pos)
            return lambda state, cand, _lf=lf, _rf=rf: _lf(state, cand) == _rf(state, cand)

        all_evals = [pair_eval(left, right) for left, right in conds]
        if any(
            not self._resolvable(left) or not self._resolvable(right) for left, right in conds
        ):
            # A condition the chain cannot resolve raises per combined row in
            # the interpreter; only the nested loop reproduces that exactly.
            return nested(all_evals)

        next_offsets = self.column_offsets[next_table]
        probe_specs: list[tuple[int, int, int]] = []
        build_offsets: list[int] = []
        local_filters: list[tuple[int, int]] = []
        for left, right in conds:
            if left.table == next_table and right.table == next_table:
                local_filters.append((next_offsets[left.name], next_offsets[right.name]))
            elif left.table == next_table:
                build_offsets.append(next_offsets[left.name])
                probe_specs.append(self._cell_spec(right, pos))
            else:
                build_offsets.append(next_offsets[right.name])
                probe_specs.append(self._cell_spec(left, pos))

        if not build_offsets:
            return nested(all_evals)

        fallback = nested(all_evals)
        single = len(build_offsets) == 1

        def step(
            state,
            jrows,
            _nti=nti,
            _locals=tuple(local_filters),
            _build=tuple(build_offsets),
            _probe=tuple(probe_specs),
            _single=single,
            _fallback=fallback,
        ):
            table = state.tables[_nti]
            try:
                # Unlike the compiled backend (which indexes the locally
                # pre-filtered build rows per step), the index covers the full
                # table so it can be cached across steps and invocations;
                # local conditions are applied per bucket.  Bucket positions
                # are in table order, so output order is identical.  An
                # unhashable build *or* probe value degrades the whole step to
                # the nested loop, exactly like the compiled backend.
                index = table.key_index(_build)
                cols = table.cols
                out = []
                if _single:
                    pti, pci, ppi = _probe[0]
                    probe_col = state.tables[pti].cols[pci]
                    for j in jrows:
                        bucket = index.get(probe_col[j[ppi]])
                        if bucket:
                            if _locals:
                                for p in bucket:
                                    for a, b in _locals:
                                        if cols[a][p] != cols[b][p]:
                                            break
                                    else:
                                        out.append(j + (p,))
                            else:
                                for p in bucket:
                                    out.append(j + (p,))
                else:
                    probe_cols = [
                        (state.tables[pti].cols[pci], ppi) for pti, pci, ppi in _probe
                    ]
                    for j in jrows:
                        key = tuple(col[j[ppi]] for col, ppi in probe_cols)
                        bucket = index.get(key)
                        if bucket:
                            if _locals:
                                for p in bucket:
                                    for a, b in _locals:
                                        if cols[a][p] != cols[b][p]:
                                            break
                                    else:
                                        out.append(j + (p,))
                            else:
                                for p in bucket:
                                    out.append(j + (p,))
                return out
            except TypeError:
                # Unhashable key value: the nested loop only needs equality.
                return _fallback(state, jrows)

        return step

    # ------------------------------------------------------------- predicates
    def _operand_spec(self, operand, pos: dict[str, int], params: frozenset[str]):
        """Static description of a never-raising operand, or ``None``.

        ``("cell", (ti, ci, pi))`` for a resolvable attribute, ``("var", name)``
        for a bound parameter, ``("const", value)`` for a literal.  ``None``
        means the operand can raise (unbound/unresolvable) and must go
        through the generic closure composition for its exact error.
        """
        if isinstance(operand, Const):
            return ("const", operand.value)
        if isinstance(operand, Var):
            if operand.name in params:
                return ("var", operand.name)
            return None
        if isinstance(operand, AttrRef):
            spec = self._cell_spec(operand.attribute, pos)
            if spec is not None:
                return ("cell", spec)
        return None

    @staticmethod
    def _fused_comparison(ls, rs, negate: bool):
        """One-closure EQ/NE over two static operand specs.

        The generic path evaluates a comparison through five closure calls
        per row (comparison → two operand adapters → extractors); equality
        filters are the inner loop of every selection in the benchmark
        suite, so the common operand shapes get a single direct lambda.
        Operand evaluation order is unobservable here — static specs never
        raise — and both sides are plain values, so ``==``/``!=`` need no
        ordering discipline beyond writing each shape out explicitly.
        """
        (lk, lv), (rk, rv) = ls, rs
        if lk == "cell" and rk == "var":
            (ti, ci, pi), n = lv, rv
            if negate:
                return lambda s, j, b, _m: s.tables[ti].cols[ci][j[pi]] != b[n]
            return lambda s, j, b, _m: s.tables[ti].cols[ci][j[pi]] == b[n]
        if lk == "var" and rk == "cell":
            n, (ti, ci, pi) = lv, rv
            if negate:
                return lambda s, j, b, _m: b[n] != s.tables[ti].cols[ci][j[pi]]
            return lambda s, j, b, _m: b[n] == s.tables[ti].cols[ci][j[pi]]
        if lk == "cell" and rk == "cell":
            (lti, lci, lpi), (rti, rci, rpi) = lv, rv
            if negate:
                return lambda s, j, _b, _m: (
                    s.tables[lti].cols[lci][j[lpi]] != s.tables[rti].cols[rci][j[rpi]]
                )
            return lambda s, j, _b, _m: (
                s.tables[lti].cols[lci][j[lpi]] == s.tables[rti].cols[rci][j[rpi]]
            )
        if lk == "cell" and rk == "const":
            (ti, ci, pi), v = lv, rv
            if negate:
                return lambda s, j, _b, _m: s.tables[ti].cols[ci][j[pi]] != v
            return lambda s, j, _b, _m: s.tables[ti].cols[ci][j[pi]] == v
        if lk == "const" and rk == "cell":
            v, (ti, ci, pi) = lv, rv
            if negate:
                return lambda s, j, _b, _m: v != s.tables[ti].cols[ci][j[pi]]
            return lambda s, j, _b, _m: v == s.tables[ti].cols[ci][j[pi]]
        if lk == "var" and rk == "var":
            ln, rn = lv, rv
            if negate:
                return lambda _s, _j, b, _m: b[ln] != b[rn]
            return lambda _s, _j, b, _m: b[ln] == b[rn]
        if lk == "var" and rk == "const":
            n, v = lv, rv
            if negate:
                return lambda _s, _j, b, _m: b[n] != v
            return lambda _s, _j, b, _m: b[n] == v
        if lk == "const" and rk == "var":
            v, n = lv, rv
            if negate:
                return lambda _s, _j, b, _m: v != b[n]
            return lambda _s, _j, b, _m: v == b[n]
        # const == const: a compile-time truth value.
        result = (lv != rv) if negate else (lv == rv)
        if result:
            return lambda _s, _j, _b, _m: True
        return lambda _s, _j, _b, _m: False

    def compile_predicate(self, pred, pos: dict[str, int], params: frozenset[str]):
        """Compile to ``(state, jrow, bindings, memo) -> bool``."""
        if isinstance(pred, TruePred):
            return lambda _s, _j, _b, _m: True
        if isinstance(pred, Comparison):
            op = pred.op
            if op is CompareOp.EQ or op is CompareOp.NE:
                ls = self._operand_spec(pred.left, pos, params)
                rs = self._operand_spec(pred.right, pos, params)
                if ls is not None and rs is not None:
                    return self._fused_comparison(ls, rs, op is CompareOp.NE)
            lf = self._row_operand(pred.left, pos, params)
            rf = self._row_operand(pred.right, pos, params)
            if op is CompareOp.EQ:
                return lambda s, j, b, _m, _lf=lf, _rf=rf: _lf(s, j, b) == _rf(s, j, b)
            if op is CompareOp.NE:
                return lambda s, j, b, _m, _lf=lf, _rf=rf: _lf(s, j, b) != _rf(s, j, b)
            return lambda s, j, b, _m, _lf=lf, _rf=rf, _op=op: compare(
                _lf(s, j, b), _op, _rf(s, j, b)
            )
        if isinstance(pred, InQuery):
            opf = self._row_operand(pred.operand, pos, params)
            subplan = self.compile_query(pred.query, params)
            slot = self._subquery_slots
            self._subquery_slots += 1

            def member(state, j, b, memo, _opf=opf, _subplan=subplan, _slot=slot):
                value = _opf(state, j, b)  # operand errors fire before the sub-query
                entry = memo.get(_slot)
                if entry is None:
                    firsts = [t[0] for t in _subplan(state, b, memo) if t]
                    try:
                        entry = (True, frozenset(firsts))
                    except TypeError:  # unhashable member value
                        entry = (False, firsts)
                    memo[_slot] = entry
                hashable, members = entry
                if hashable:
                    try:
                        return value in members
                    except TypeError:  # unhashable probe value
                        pass
                # The interpreter's linear == scan (members on the left).
                return any(m == value for m in members)

            return member
        if isinstance(pred, And):
            lf = self.compile_predicate(pred.left, pos, params)
            rf = self.compile_predicate(pred.right, pos, params)
            return lambda s, j, b, m, _lf=lf, _rf=rf: _lf(s, j, b, m) and _rf(s, j, b, m)
        if isinstance(pred, Or):
            lf = self.compile_predicate(pred.left, pos, params)
            rf = self.compile_predicate(pred.right, pos, params)
            return lambda s, j, b, m, _lf=lf, _rf=rf: _lf(s, j, b, m) or _rf(s, j, b, m)
        if isinstance(pred, Not):
            inner = self.compile_predicate(pred.operand, pos, params)
            return lambda s, j, b, m, _f=inner: not _f(s, j, b, m)
        raise TypeError(f"unknown predicate node {pred!r}")

    # ---------------------------------------------------------------- queries
    def compile_query(self, query, params: frozenset[str]):
        """Compile to ``(state, bindings, memo) -> list[tuple]``."""
        node = query
        projection: Optional[tuple[Attribute, ...]] = None
        if isinstance(node, Projection):
            projection = node.attributes
            node = node.source
        selections = []  # outermost first, applied innermost first
        while isinstance(node, (Projection, Selection)):
            if isinstance(node, Selection):
                selections.append(node.predicate)
            node = node.source
        if not isinstance(node, JoinChain):
            raise TypeError(f"unknown query node {node!r}")

        chain_plan, pos, chain_key = self.compile_chain(node)
        filters = tuple(
            self.compile_predicate(p, pos, params)
            for p in reversed(selections)
            if not isinstance(p, TruePred)
        )
        if projection is not None:
            attrs = projection
        else:
            attrs = tuple(
                Attribute(table, col)
                for table in node.tables
                for col in self.column_offsets.get(table, {})
            )
        specs = tuple(self._cell_spec(attr, pos) for attr in attrs)

        if all(spec is not None for spec in specs):
            # Column-at-a-time projection: pull each output column once.
            def run(
                state, bindings, memo=None,
                _plan=chain_plan, _key=chain_key, _filters=filters, _specs=specs,
            ):
                # Probe the chain cache inline: on a hit (the steady state of
                # batched screening, where sibling queries share one parent
                # state) this saves the plan call entirely.
                if _key is None:
                    jrows = _plan(state)
                else:
                    jrows = state.chain_cache.get(_key)
                    if jrows is None:
                        jrows = _plan(state)
                for f in _filters:
                    jrows = [j for j in jrows if f(state, j, bindings, memo)]
                if not jrows:
                    return []
                if not _specs:
                    return [() for _ in jrows]
                tables = state.tables
                if len(_specs) == 1:
                    ti, ci, pi = _specs[0]
                    col = tables[ti].cols[ci]
                    return [(col[j[pi]],) for j in jrows]
                out_cols = []
                for ti, ci, pi in _specs:
                    col = tables[ti].cols[ci]
                    out_cols.append([col[j[pi]] for j in jrows])
                return list(zip(*out_cols))

            return run

        # Some attribute is unresolvable: keep the per-row path so its error
        # fires at the first row, after the resolvable attrs of that row were
        # read — the same left-to-right, row-at-a-time order as the compiled
        # backend (the error aborts execution, so column-at-a-time evaluation
        # of the earlier attrs would be observably identical, but per-row is
        # simplest to keep exactly aligned).
        extractors = tuple(self._cell_extractor(attr, pos) for attr in attrs)

        def run_rowwise(
            state, bindings, memo=None,
            _plan=chain_plan, _key=chain_key, _filters=filters, _ex=extractors,
        ):
            if _key is None:
                jrows = _plan(state)
            else:
                jrows = state.chain_cache.get(_key)
                if jrows is None:
                    jrows = _plan(state)
            for f in _filters:
                jrows = [j for j in jrows if f(state, j, bindings, memo)]
            return [tuple(e(state, j) for e in _ex) for j in jrows]

        return run_rowwise

    # ------------------------------------------------------------- statements
    def _compile_matcher(self, chain: JoinChain, predicate, params: frozenset[str]):
        """Join-then-filter, shared by delete and update."""
        chain_plan, pos, chain_key = self.compile_chain(chain)
        pred_fn = (
            None
            if isinstance(predicate, TruePred)
            else self.compile_predicate(predicate, pos, params)
        )

        def matches(state, bindings, _plan=chain_plan, _key=chain_key, _pred=pred_fn):
            if _key is None:
                jrows = _plan(state)
            else:
                jrows = state.chain_cache.get(_key)
                if jrows is None:
                    jrows = _plan(state)
            if _pred is not None:
                memo: dict = {}
                jrows = [j for j in jrows if _pred(state, j, bindings, memo)]
            return jrows

        return matches, pos

    def compile_insert(self, stmt: Insert, params: frozenset[str]):
        chain = stmt.target
        resolvers = tuple(
            self._rowless_operand(operand, params) for _attr, operand in stmt.values
        )
        # Last value wins per attribute, but *first* occurrence fixes the
        # iteration position — exactly dict-comprehension semantics.
        provided: dict[Attribute, int] = {}
        for i, (attr, _operand) in enumerate(stmt.values):
            provided[attr] = i

        parent: dict[Attribute, Attribute] = {}

        def find(a: Attribute) -> Attribute:
            parent.setdefault(a, a)
            while parent[a] != a:
                parent[a] = parent[parent[a]]
                a = parent[a]
            return a

        for left, right in chain.conditions:
            ra, rb = find(left), find(right)
            if ra != rb:
                parent[ra] = rb

        root_provided: dict[Attribute, int] = {}
        for attr, idx in provided.items():
            root_provided[find(attr)] = idx

        root_slots: dict[Attribute, int] = {}
        table_ops = []
        for table in chain.tables:
            if table not in self.table_index:
                message = f"unknown table {table!r} in schema {self.schema.name!r}"

                def raise_schema(_state, _vals, _fresh, _message=message):
                    raise SchemaError(_message)

                table_ops.append(raise_schema)
                continue
            cells: list[tuple[bool, int]] = []
            for col in self.column_offsets[table]:
                attr = Attribute(table, col)
                if attr in provided:
                    cells.append((True, provided[attr]))
                    continue
                root = find(attr)
                if root in root_provided:
                    cells.append((True, root_provided[root]))
                else:
                    slot = root_slots.setdefault(root, len(root_slots))
                    cells.append((False, slot))

            def insert_row(state, vals, fresh, _ti=self.table_index[table], _cells=tuple(cells)):
                row = []
                for is_value, arg in _cells:
                    if is_value:
                        row.append(vals[arg])
                    else:
                        v = fresh.get(arg)
                        if v is None:
                            v = state.uids.fresh()
                            fresh[arg] = v
                        row.append(v)
                state.append_row(_ti, row)

            table_ops.append(insert_row)

        def run(state, bindings, _resolvers=resolvers, _ops=tuple(table_ops)):
            vals = [f(bindings) for f in _resolvers]
            fresh: dict[int, Any] = {}
            for op in _ops:
                op(state, vals, fresh)

        return run

    def compile_delete(self, stmt: Delete, params: frozenset[str]):
        matcher, pos = self._compile_matcher(stmt.source, stmt.predicate, params)
        # Positions become stale the moment a target table mutates, so every
        # target's rowid set is captured from the matches *before* any
        # deletion applies (the compiled backend gets this for free from CRow
        # identity).  Raising collectors keep the compiled backend's error
        # order: the op for an out-of-chain target raises at its position in
        # the target list, before later targets are consulted.
        collectors = []
        for table in stmt.tables:
            pi = pos.get(table)
            if pi is None:
                message = f"delete target {table!r} not in join chain {stmt.source}"

                def raise_target(_state, _matches, _message=message):
                    raise ExecutionError(_message)

                collectors.append(raise_target)
                continue
            ti = self.table_index.get(table)
            if ti is None:
                # The chain itself is invalid; the matcher raises first.
                continue

            def collect(state, matches, _ti=ti, _pi=pi):
                rowids = state.tables[_ti].rowids
                return (_ti, {rowids[j[_pi]] for j in matches})

            collectors.append(collect)

        def run(state, bindings, _matcher=matcher, _collects=tuple(collectors)):
            matches = _matcher(state, bindings)
            plans = [collect(state, matches) for collect in _collects]
            for ti, rowid_set in plans:
                if rowid_set:
                    state.delete_rows(ti, rowid_set)

        return run

    def compile_update(self, stmt: Update, params: frozenset[str]):
        matcher, pos = self._compile_matcher(stmt.source, stmt.predicate, params)
        table = stmt.attribute.table
        value_fn = self._rowless_operand(stmt.value, params)
        pi = pos.get(table)
        if pi is None:
            message = f"updated attribute {stmt.attribute} not in join chain {stmt.source}"

            def run_bad_table(state, bindings, _matcher=matcher, _message=message):
                _matcher(state, bindings)  # join/predicate errors come first
                raise ExecutionError(_message)

            return run_bad_table
        ti = self.table_index.get(table)
        if ti is None:
            # Chain contains an unknown table: the matcher always raises.
            def run_bad_chain(state, bindings, _matcher=matcher):
                _matcher(state, bindings)
                raise AssertionError("unreachable: matcher must raise")  # pragma: no cover

            return run_bad_chain
        ci = self.column_offsets[table].get(stmt.attribute.name)
        if ci is None:
            message = f"unknown column {stmt.attribute.name!r} for table {table!r}"

            def run_bad_column(
                state, bindings, _matcher=matcher, _value=value_fn, _message=message
            ):
                _matcher(state, bindings)
                _value(bindings)  # value errors come before the column check
                raise InstanceError(_message)

            return run_bad_column

        def run(state, bindings, _matcher=matcher, _value=value_fn, _ti=ti, _pi=pi, _ci=ci):
            matches = _matcher(state, bindings)
            value = _value(bindings)
            if matches:
                state.set_cells(_ti, _ci, {j[_pi] for j in matches}, value)

        return run

    # -------------------------------------------------------------- functions
    def compile_function(self, func: Function) -> ColumnarFunction:
        param_names = tuple(p.name for p in func.params)
        params = frozenset(param_names)
        if isinstance(func, QueryFunction):
            slots_before = self._subquery_slots
            plan = self.compile_query(func.query, params)
            if self._subquery_slots == slots_before:
                # No InQuery anywhere below: the memo is never touched, so the
                # plan itself (whose memo parameter defaults to None) is the
                # function body — no wrapper frame per invocation.
                return ColumnarFunction(func.name, param_names, True, plan)

            def run_query(state, bindings, _plan=plan):
                return _plan(state, bindings, {})

            return ColumnarFunction(func.name, param_names, True, run_query)
        assert isinstance(func, UpdateFunction)
        stmt_fns = []
        for stmt in func.statements:
            if isinstance(stmt, Insert):
                stmt_fns.append(self.compile_insert(stmt, params))
            elif isinstance(stmt, Delete):
                stmt_fns.append(self.compile_delete(stmt, params))
            elif isinstance(stmt, Update):
                stmt_fns.append(self.compile_update(stmt, params))
            else:
                raise TypeError(f"unknown statement node {stmt!r}")

        def run_update(state, bindings, _stmts=tuple(stmt_fns)):
            for s in _stmts:
                s(state, bindings)

        return ColumnarFunction(func.name, param_names, False, run_update)
