"""Program-level interpreter: run functions and invocation sequences.

The interpreter owns one database instance (starting empty, as required by
the equivalence definition of Section 3.2) and executes function invocations
against it.  Query results are returned as lists of tuples; the equivalence
layer compares them as multisets.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.datamodel.instance import DatabaseInstance
from repro.engine.evaluator import Evaluator
from repro.engine.joins import ExecutionError
from repro.engine.uid import UidGenerator
from repro.lang.ast import Function, Program, QueryFunction, UpdateFunction


class InvocationError(ExecutionError):
    """Raised when a function is invoked with the wrong arguments."""


class ProgramInterpreter:
    """Executes one database program starting from the empty instance."""

    def __init__(self, program: Program):
        self.program = program
        self.instance = DatabaseInstance(program.schema)
        self.evaluator = Evaluator(self.instance, UidGenerator())

    # ------------------------------------------------------------------ calls
    def _bindings(self, func: Function, args: Sequence[Any]) -> dict[str, Any]:
        if len(args) != len(func.params):
            raise InvocationError(
                f"function {func.name!r} expects {len(func.params)} arguments, got {len(args)}"
            )
        return {param.name: value for param, value in zip(func.params, args)}

    def call(self, name: str, args: Sequence[Any] = ()) -> list[tuple] | None:
        """Invoke a function by name.

        Update functions return ``None``; query functions return the list of
        result tuples.
        """
        func = self.program.function(name)
        bindings = self._bindings(func, args)
        if isinstance(func, QueryFunction):
            return self.evaluator.query_tuples(func.query, bindings)
        assert isinstance(func, UpdateFunction)
        for stmt in func.statements:
            self.evaluator.execute(stmt, bindings)
        return None

    def reset(self) -> None:
        """Clear the database and restart UID generation (a fresh execution)."""
        self.instance.clear()
        self.evaluator.uids.reset()


def run_invocation_sequence(
    program: Program, sequence: Iterable[tuple[str, Sequence[Any]]]
) -> list[list[tuple]]:
    """Execute an invocation sequence from the empty database.

    Returns the list of query results, in invocation order (update calls
    contribute nothing).  Two programs are equivalent on the sequence iff
    these lists match element-wise as multisets.
    """
    interpreter = ProgramInterpreter(program)
    outputs: list[list[tuple]] = []
    for name, args in sequence:
        result = interpreter.call(name, args)
        if result is not None:
            outputs.append(result)
    return outputs
