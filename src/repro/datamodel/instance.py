"""Database instances: concrete table contents during program execution.

An instance maps table names to lists of rows; each row maps column names to
values.  Rows carry a stable identity (``rowid``) so that deletions and
updates performed through a join chain can locate the originating source rows
(Section 3.1 of the paper describes these semantics).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.datamodel.schema import Schema
from repro.datamodel.types import check_value


@dataclass(slots=True)
class Row:
    """A single tuple of a table, with a per-instance unique ``rowid``."""

    rowid: int
    values: dict[str, Any]

    def get(self, column: str) -> Any:
        return self.values.get(column)

    def copy(self) -> "Row":
        return Row(self.rowid, dict(self.values))

    def as_tuple(self, columns: Iterable[str]) -> tuple:
        return tuple(self.values.get(c) for c in columns)


class InstanceError(Exception):
    """Raised on malformed instance operations (unknown tables/columns)."""


class DatabaseInstance:
    """Mutable database state for one execution of a database program."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self._data: dict[str, list[Row]] = {name: [] for name in schema.table_names}
        self._rowid_counter = itertools.count(1)
        # Per-table column metadata, computed once: ``insert`` used to rebuild
        # ``set(decl.columns)`` (and re-lookup the declaration) for every row,
        # which dominated the engine-internal insert path.
        self._columns: dict[str, tuple[str, ...]] = {
            name: tuple(schema.table(name).columns) for name in schema.table_names
        }
        self._column_sets: dict[str, frozenset[str]] = {
            name: frozenset(cols) for name, cols in self._columns.items()
        }
        self._column_types: dict[str, dict[str, Any]] = {
            name: dict(schema.table(name).columns) for name in schema.table_names
        }

    def columns_of(self, table: str) -> tuple[str, ...]:
        """Declared column names of *table*, cached (declaration order)."""
        if table not in self._columns:
            raise InstanceError(f"unknown table {table!r}")
        return self._columns[table]

    # ------------------------------------------------------------------ state
    def rows(self, table: str) -> list[Row]:
        if table not in self._data:
            raise InstanceError(f"unknown table {table!r}")
        return self._data[table]

    def tables(self) -> list[str]:
        return list(self._data)

    def size(self, table: str) -> int:
        return len(self.rows(table))

    def total_rows(self) -> int:
        return sum(len(rows) for rows in self._data.values())

    def is_empty(self) -> bool:
        return self.total_rows() == 0

    # -------------------------------------------------------------- mutation
    def insert(self, table: str, values: dict[str, Any], *, typecheck: bool = True) -> Row:
        """Insert a row.  Missing columns default to ``None`` (SQL NULL)."""
        if table not in self._columns:
            # Same error the schema lookup used to raise for unknown tables.
            self.schema.table(table)
        column_set = self._column_sets[table]
        if not column_set.issuperset(values):
            unknown = set(values) - column_set
            raise InstanceError(f"unknown columns {sorted(unknown)} for table {table!r}")
        full = {col: values.get(col) for col in self._columns[table]}
        if typecheck:
            types = self._column_types[table]
            for col, value in full.items():
                check_value(value, types[col])
        row = Row(next(self._rowid_counter), full)
        self._data[table].append(row)
        return row

    def insert_full_row(self, table: str, full: dict[str, Any]) -> Row:
        """Engine-internal fast path: *full* already maps every declared column.

        Skips the unknown-column check and typechecking; callers (the
        execution engine) build *full* from :meth:`columns_of`, so both are
        redundant there.
        """
        row = Row(next(self._rowid_counter), full)
        self._data[table].append(row)
        return row

    def delete_rows(self, table: str, rowids: Iterable[int]) -> int:
        """Delete rows of *table* by rowid; returns the number removed."""
        doomed = set(rowids)
        if not doomed:
            return 0
        before = len(self._data[table])
        self._data[table] = [r for r in self._data[table] if r.rowid not in doomed]
        return before - len(self._data[table])

    def update_rows(self, table: str, rowids: Iterable[int], column: str, value: Any) -> int:
        """Set *column* to *value* on the listed rows; returns the number changed."""
        decl = self.schema.table(table)
        if column not in decl.columns:
            raise InstanceError(f"unknown column {column!r} for table {table!r}")
        targets = set(rowids)
        changed = 0
        for row in self._data[table]:
            if row.rowid in targets:
                row.values[column] = value
                changed += 1
        return changed

    def clear(self) -> None:
        for rows in self._data.values():
            rows.clear()

    # ------------------------------------------------------------ inspection
    def snapshot(self) -> dict[str, list[tuple]]:
        """An immutable-ish snapshot used by tests: table -> list of value tuples."""
        result: dict[str, list[tuple]] = {}
        for table, rows in self._data.items():
            columns = list(self.schema.table(table).columns)
            result[table] = [row.as_tuple(columns) for row in rows]
        return result

    def __iter__(self) -> Iterator[tuple[str, list[Row]]]:
        return iter(self._data.items())

    def __repr__(self) -> str:
        sizes = {t: len(rows) for t, rows in self._data.items() if rows}
        return f"DatabaseInstance({self.schema.name!r}, sizes={sizes})"
