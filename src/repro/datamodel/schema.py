"""Relational schemas: attributes, tables, foreign keys.

A :class:`Schema` is the static description of a database: a set of tables,
each with typed attributes, an optional primary key, and foreign-key links.
Foreign keys (together with identically named attributes) determine the
*join graph* used when inferring join correspondences (Section 5 of the
paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from repro.datamodel.types import DataType


@dataclass(frozen=True, order=True)
class Attribute:
    """A fully qualified attribute ``table.name``."""

    table: str
    name: str

    def __str__(self) -> str:
        return f"{self.table}.{self.name}"

    @staticmethod
    def parse(text: str) -> "Attribute":
        """Parse ``"Table.attr"`` into an :class:`Attribute`."""
        if "." not in text:
            raise ValueError(f"attribute reference {text!r} must be qualified as Table.attr")
        table, _, name = text.partition(".")
        return Attribute(table, name)


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key link ``src_table.src_attr -> dst_table.dst_attr``."""

    source: Attribute
    target: Attribute

    def __str__(self) -> str:
        return f"{self.source} -> {self.target}"


@dataclass
class Table:
    """A table declaration: ordered attributes with types and a primary key."""

    name: str
    columns: dict[str, DataType] = field(default_factory=dict)
    primary_key: Optional[str] = None

    def __post_init__(self) -> None:
        if self.primary_key is not None and self.primary_key not in self.columns:
            raise ValueError(
                f"primary key {self.primary_key!r} is not a column of table {self.name!r}"
            )

    @property
    def attributes(self) -> list[Attribute]:
        return [Attribute(self.name, col) for col in self.columns]

    def attribute(self, name: str) -> Attribute:
        if name not in self.columns:
            raise KeyError(f"table {self.name!r} has no column {name!r}")
        return Attribute(self.name, name)

    def type_of(self, name: str) -> DataType:
        return self.columns[name]

    def __contains__(self, name: str) -> bool:
        return name in self.columns

    def __len__(self) -> int:
        return len(self.columns)


class SchemaError(Exception):
    """Raised for malformed schema declarations or lookups."""


class Schema:
    """A named collection of tables plus foreign-key links.

    The schema offers the lookups needed throughout the pipeline: attribute
    typing, the set of all attributes, and the join graph induced by foreign
    keys and shared attribute names.
    """

    def __init__(self, name: str = "schema") -> None:
        self.name = name
        self._tables: dict[str, Table] = {}
        self._foreign_keys: list[ForeignKey] = []

    # ------------------------------------------------------------------ build
    def add_table(
        self,
        name: str,
        columns: dict[str, DataType] | Iterable[tuple[str, DataType]],
        primary_key: Optional[str] = None,
    ) -> Table:
        """Declare a table.  Columns keep their declaration order."""
        if name in self._tables:
            raise SchemaError(f"table {name!r} already declared")
        if not isinstance(columns, dict):
            columns = dict(columns)
        if not columns:
            raise SchemaError(f"table {name!r} must have at least one column")
        table = Table(name, dict(columns), primary_key)
        self._tables[name] = table
        return table

    def add_foreign_key(self, source: Attribute | str, target: Attribute | str) -> ForeignKey:
        """Declare a foreign key between two existing attributes."""
        src = Attribute.parse(source) if isinstance(source, str) else source
        dst = Attribute.parse(target) if isinstance(target, str) else target
        for attr in (src, dst):
            if not self.has_attribute(attr):
                raise SchemaError(f"unknown attribute {attr} in foreign key")
        fk = ForeignKey(src, dst)
        self._foreign_keys.append(fk)
        return fk

    # ----------------------------------------------------------------- lookup
    @property
    def tables(self) -> dict[str, Table]:
        return dict(self._tables)

    @property
    def table_names(self) -> list[str]:
        return list(self._tables)

    @property
    def foreign_keys(self) -> list[ForeignKey]:
        return list(self._foreign_keys)

    def table(self, name: str) -> Table:
        if name not in self._tables:
            raise SchemaError(f"unknown table {name!r} in schema {self.name!r}")
        return self._tables[name]

    def __contains__(self, table_name: str) -> bool:
        return table_name in self._tables

    def has_attribute(self, attr: Attribute) -> bool:
        return attr.table in self._tables and attr.name in self._tables[attr.table]

    def type_of(self, attr: Attribute) -> DataType:
        if not self.has_attribute(attr):
            raise SchemaError(f"unknown attribute {attr} in schema {self.name!r}")
        return self._tables[attr.table].type_of(attr.name)

    def attributes(self) -> list[Attribute]:
        """All attributes in declaration order (tables, then columns)."""
        result: list[Attribute] = []
        for table in self._tables.values():
            result.extend(table.attributes)
        return result

    def attributes_of(self, table_name: str) -> list[Attribute]:
        return self.table(table_name).attributes

    def num_attributes(self) -> int:
        return sum(len(t) for t in self._tables.values())

    def num_tables(self) -> int:
        return len(self._tables)

    # --------------------------------------------------------------- joinable
    def joinable_pairs(self) -> list[tuple[Attribute, Attribute]]:
        """Pairs of attributes on which two distinct tables can be equi-joined.

        A pair is joinable when it is declared as a foreign key, or when the
        two attributes share the same name and type in different tables
        (the "natural join" convention used throughout the paper).
        """
        pairs: list[tuple[Attribute, Attribute]] = []
        seen: set[frozenset[Attribute]] = set()

        def record(a: Attribute, b: Attribute) -> None:
            key = frozenset((a, b))
            if a.table != b.table and key not in seen:
                seen.add(key)
                pairs.append((a, b))

        for fk in self._foreign_keys:
            record(fk.source, fk.target)
        tables = list(self._tables.values())
        for i, left in enumerate(tables):
            for right in tables[i + 1 :]:
                for col, dtype in left.columns.items():
                    if col in right.columns and right.columns[col] == dtype:
                        record(Attribute(left.name, col), Attribute(right.name, col))
        return pairs

    # ------------------------------------------------------------------ misc
    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __repr__(self) -> str:
        return f"Schema({self.name!r}, tables={list(self._tables)})"

    def describe(self) -> str:
        """A human readable, paper-style schema description."""
        lines = []
        for table in self._tables.values():
            cols = ", ".join(table.columns)
            lines.append(f"{table.name} ({cols})")
        return "\n".join(lines)


def make_schema(
    name: str,
    tables: dict[str, dict[str, DataType]],
    primary_keys: Optional[dict[str, str]] = None,
    foreign_keys: Optional[Iterable[tuple[str, str]]] = None,
) -> Schema:
    """Convenience constructor used heavily by the benchmark suite."""
    schema = Schema(name)
    primary_keys = primary_keys or {}
    for table_name, columns in tables.items():
        schema.add_table(table_name, columns, primary_keys.get(table_name))
    for src, dst in foreign_keys or ():
        schema.add_foreign_key(src, dst)
    return schema
