"""Value types used by database programs.

The paper's programs manipulate four scalar types (``int``, ``String``,
``Binary`` and booleans).  We model them with a small enumeration plus a
handful of helpers for type checking and for producing the constant "seed
sets" used by the bounded testing engine (Section 5 of the paper).
"""

from __future__ import annotations

import enum
from typing import Any, Iterable


class DataType(enum.Enum):
    """Scalar types of attribute values and function parameters."""

    INT = "int"
    STRING = "String"
    BINARY = "Binary"
    BOOL = "bool"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Python types that are acceptable carriers for each :class:`DataType`.
_PYTHON_CARRIERS: dict[DataType, tuple[type, ...]] = {
    DataType.INT: (int,),
    DataType.STRING: (str,),
    DataType.BINARY: (str, bytes),
    DataType.BOOL: (bool,),
}


class TypeError_(Exception):
    """Raised when a value does not match its declared :class:`DataType`."""


def check_value(value: Any, dtype: DataType) -> None:
    """Raise :class:`TypeError_` unless *value* is a valid carrier of *dtype*.

    ``None`` is always allowed and denotes a SQL NULL.  Fresh UIDs produced by
    the execution engine are also always allowed because they stand for opaque
    unique values of any type.
    """
    from repro.engine.uid import UniqueValue

    if value is None or isinstance(value, UniqueValue):
        return
    carriers = _PYTHON_CARRIERS[dtype]
    if dtype is DataType.INT and isinstance(value, bool):
        raise TypeError_(f"boolean {value!r} is not a valid {dtype}")
    if not isinstance(value, carriers):
        raise TypeError_(f"value {value!r} is not a valid {dtype}")


def default_seed_values(dtype: DataType) -> list[Any]:
    """Return the default constant seed set for *dtype*.

    These constants are used when enumerating invocation sequences for
    bounded testing, mirroring the fixed per-type seed sets described in the
    paper's implementation section (e.g. ``{0, 1}`` for integers).
    """
    if dtype is DataType.INT:
        return [0, 1]
    if dtype is DataType.STRING:
        return ["A", "B"]
    if dtype is DataType.BINARY:
        return ["blob0", "blob1"]
    if dtype is DataType.BOOL:
        return [True, False]
    raise ValueError(f"unknown data type {dtype!r}")


def parse_type(name: str) -> DataType:
    """Parse a textual type name (as written in the input DSL)."""
    normalized = name.strip()
    lookup = {
        "int": DataType.INT,
        "integer": DataType.INT,
        "string": DataType.STRING,
        "str": DataType.STRING,
        "binary": DataType.BINARY,
        "blob": DataType.BINARY,
        "bool": DataType.BOOL,
        "boolean": DataType.BOOL,
    }
    key = normalized.lower()
    if key not in lookup:
        raise ValueError(f"unknown type name {name!r}")
    return lookup[key]


def compatible(left: DataType, right: DataType) -> bool:
    """Whether two attribute types may hold identical values.

    The MaxSAT hard constraint on value correspondences only allows mapping
    an attribute to attributes of a *compatible* type.  We treat STRING and
    BINARY as distinct (as the paper does by using different declared types
    in its examples), so compatibility is plain equality.
    """
    return left == right


def all_types() -> Iterable[DataType]:
    """All scalar types, in declaration order."""
    return tuple(DataType)
