"""Data model: value types, schemas, and database instances."""

from repro.datamodel.instance import DatabaseInstance, InstanceError, Row
from repro.datamodel.schema import Attribute, ForeignKey, Schema, SchemaError, Table, make_schema
from repro.datamodel.types import DataType, TypeError_, check_value, default_seed_values, parse_type

__all__ = [
    "Attribute",
    "DataType",
    "DatabaseInstance",
    "ForeignKey",
    "InstanceError",
    "Row",
    "Schema",
    "SchemaError",
    "Table",
    "TypeError_",
    "check_value",
    "default_seed_values",
    "make_schema",
    "parse_type",
]
