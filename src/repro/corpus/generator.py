"""Seeded property-based workload generation.

:func:`generate_workload` turns ``(seed, CorpusConfig)`` into a
:class:`GeneratedWorkload`: a random schema (width / depth / FK-density
knobs), a deterministic CRUD program over it, and a random sequence of
refactoring steps applied via :mod:`repro.corpus.rewrite` so that every step
carries the known-good oracle migration program.  Everything flows from one
``random.Random(seed)`` — same seed, same workload, byte for byte — which is
what makes a fuzz failure replayable from its seed alone.

Generated workloads package as ordinary :class:`~repro.workloads.Benchmark`
objects.  Registration is *opt-in* (:func:`register_corpus` into a registry
you pass): the global registry must keep exactly the 20 reconstructed paper
benchmarks, and the test suite pins that.

Step sampling respects the soundness side-conditions the rewriter enforces
(and retries on the rare sample that violates one):

* split / move never relocates a primary-key or foreign-key-endpoint column
  (the spec's FK list would dangle);
* merge only pairs tables with disjoint columns that no function joins;
* fold only undoes a split performed earlier in the *same* workload, and a
  split's fold-candidacy is invalidated as soon as any later step touches
  either half — the 1-1 link invariant is provenance, not a schema fact.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.datamodel.schema import Schema
from repro.datamodel.types import DataType
from repro.lang.ast import Program
from repro.lang.visitors import join_chains_of_program
from repro.workloads.crud import CrudProgramGenerator, EntityDef, JoinQuerySpec
from repro.workloads.refactorings import RefactoringError, SchemaSpec
from repro.workloads.registry import Benchmark, BenchmarkRegistry
from repro.corpus.rewrite import (
    AddColumnStep,
    FoldStep,
    MergeStep,
    MoveColumnStep,
    RenameColumnStep,
    RenameTableStep,
    RewriteError,
    SplitStep,
    Step,
)

_TABLE_WORDS = [
    "users", "orders", "items", "events", "assets",
    "notes", "tags", "files", "teams", "plans",
]
_COLUMN_WORDS = [
    "name", "label", "status", "body", "data",
    "rank", "flag", "owner", "title", "code",
]
_COLUMN_TYPES = [DataType.INT, DataType.STRING, DataType.BINARY, DataType.BOOL]


@dataclass(frozen=True)
class CorpusConfig:
    """Knobs of the schema sampler and step sampler."""

    min_tables: int = 2
    max_tables: int = 4          # schema width
    min_columns: int = 2
    max_columns: int = 5         # table depth
    fk_density: float = 0.5      # probability a table links to an earlier one
    num_steps: int = 2           # refactoring steps per workload
    num_functions: int = 12      # CRUD program size

    def scaled(self, *, tables: Optional[int] = None, columns: Optional[int] = None,
               steps: Optional[int] = None, functions: Optional[int] = None) -> "CorpusConfig":
        """A copy pinned to exact sizes (used by the eval scale curves)."""
        return CorpusConfig(
            min_tables=tables or self.min_tables,
            max_tables=tables or self.max_tables,
            min_columns=columns or self.min_columns,
            max_columns=columns or self.max_columns,
            fk_density=self.fk_density,
            num_steps=steps if steps is not None else self.num_steps,
            num_functions=functions or self.num_functions,
        )


@dataclass(frozen=True)
class AppliedStep:
    """One refactoring step together with its post-state."""

    step: Step
    spec: SchemaSpec
    oracle: Program  # known-good migrated program over ``spec.build()``


@dataclass
class GeneratedWorkload:
    """A seeded workload: source program, step sequence, per-step oracles."""

    name: str
    seed: int
    config: CorpusConfig
    source_spec: SchemaSpec
    source_program: Program
    steps: list[AppliedStep]

    @property
    def target_schema(self) -> Schema:
        return self.steps[-1].oracle.schema

    @property
    def oracle_program(self) -> Program:
        """The composed oracle: the program after every step's rewrite."""
        return self.steps[-1].oracle

    def describe_steps(self) -> list[str]:
        return [applied.step.describe() for applied in self.steps]

    def benchmark(self) -> Benchmark:
        return Benchmark(
            name=self.name,
            description="generated: " + "; ".join(self.describe_steps()),
            category="generated",
            source_program=self.source_program,
            target_schema=self.target_schema,
        )


# ------------------------------------------------------------- schema sampling
def _sample_spec(rng: random.Random, config: CorpusConfig, name: str) -> SchemaSpec:
    num_tables = rng.randint(config.min_tables, config.max_tables)
    tables = rng.sample(_TABLE_WORDS, num_tables)
    spec = SchemaSpec(name)
    for index, table in enumerate(tables):
        num_columns = rng.randint(config.min_columns, config.max_columns)
        columns: dict[str, DataType] = {f"{table}_id": DataType.INT}
        for word in rng.sample(_COLUMN_WORDS, num_columns):
            columns[f"{table}_{word}"] = rng.choice(_COLUMN_TYPES)
        if index > 0 and rng.random() < config.fk_density:
            target = rng.choice(tables[:index])
            columns[f"{target}_id"] = DataType.INT
        spec.add_table(table, columns)
    for table in tables:
        for column in spec.tables[table]:
            target = column[: -len("_id")] if column.endswith("_id") else None
            if target and target != table and target in spec.tables:
                spec.add_foreign_key(f"{table}.{column}", f"{target}.{column}")
    return spec


def entities_from_spec(spec: SchemaSpec) -> list[EntityDef]:
    """EntityDefs for every table, keyed by the ``<table>_id`` convention."""
    entities = []
    for table, columns in spec.tables.items():
        key = f"{table}_id" if f"{table}_id" in columns else next(iter(columns))
        entities.append(EntityDef(table, key, dict(columns)))
    return entities


def join_specs_from_spec(
    spec: SchemaSpec, entities: Sequence[EntityDef]
) -> list[JoinQuerySpec]:
    """One join query per declared foreign key, projecting both sides."""
    by_table = {e.table: e for e in entities}
    specs = []
    for source, target in spec.foreign_keys:
        left_table, _, left_column = source.partition(".")
        right_table, _, right_column = target.partition(".")
        left = by_table.get(left_table)
        right = by_table.get(right_table)
        if left is None or right is None:
            continue
        right_value = next(
            (c for c in right.columns if c != right_column), right_column
        )
        specs.append(
            JoinQuerySpec(
                left=left_table,
                right=right_table,
                left_column=left_column,
                right_column=right_column,
                key_column=left.key,
                project=(
                    f"{left_table}.{left.key}",
                    f"{right_table}.{right_value}",
                ),
            )
        )
    return specs


def crud_program_for_spec(
    spec: SchemaSpec, name: str, num_functions: int
) -> Program:
    """The deterministic CRUD program the corpus builds over a sampled spec."""
    entities = entities_from_spec(spec)
    join_queries = join_specs_from_spec(spec, entities)
    generator = CrudProgramGenerator(name, spec.build(), entities, join_queries)
    return generator.generate(num_functions)


# --------------------------------------------------------------- step sampling
def _fk_endpoint_columns(spec: SchemaSpec) -> set[tuple[str, str]]:
    endpoints: set[tuple[str, str]] = set()
    for source, target in spec.foreign_keys:
        for ref in (source, target):
            table, _, column = ref.partition(".")
            endpoints.add((table, column))
    return endpoints


def _movable_columns(spec: SchemaSpec, table: str) -> list[str]:
    """Columns a split may relocate: non-key, not an FK endpoint."""
    endpoints = _fk_endpoint_columns(spec)
    return [
        column
        for column in spec.tables[table]
        if column != f"{table}_id" and (table, column) not in endpoints
    ]


def _joined_pairs(program: Program) -> set[frozenset[str]]:
    pairs: set[frozenset[str]] = set()
    for chain in join_chains_of_program(program):
        tables = list(chain.tables)
        for i, left in enumerate(tables):
            for right in tables[i + 1 :]:
                pairs.add(frozenset((left, right)))
    return pairs


def _sample_step(
    rng: random.Random,
    spec: SchemaSpec,
    oracle: Program,
    foldable: list[tuple[str, str, str]],
    counter: int,
) -> Optional[Step]:
    """One applicable refactoring step, or ``None`` if nothing fits."""
    tables = list(spec.tables)
    kinds = ["rename_column", "rename_table", "add_column", "split", "move", "merge"]
    if foldable:
        kinds.append("fold")
    rng.shuffle(kinds)
    for kind in kinds:
        if kind == "rename_column":
            table = rng.choice(tables)
            candidates = _movable_columns(spec, table)
            if not candidates:
                continue
            column = rng.choice(candidates)
            return RenameColumnStep(table, column, f"{column}_v{counter}")
        if kind == "rename_table":
            table = rng.choice(tables)
            return RenameTableStep(table, f"{table}_v{counter}")
        if kind == "add_column":
            table = rng.choice(tables)
            return AddColumnStep(
                table, f"{table}_extra{counter}", rng.choice(_COLUMN_TYPES)
            )
        if kind in ("split", "move"):
            candidates = [
                t for t in tables
                if _movable_columns(spec, t) and len(spec.tables[t]) >= 2
            ]
            if not candidates:
                continue
            table = rng.choice(candidates)
            movable = _movable_columns(spec, table)
            limit = min(len(movable), len(spec.tables[table]) - 1)
            if limit < 1:
                continue
            count = 1 if kind == "move" else rng.randint(1, min(2, limit))
            moved = tuple(sorted(rng.sample(movable, count)))
            new_table = f"{table}_detail{counter}"
            link = f"{table}_link{counter}_id"
            cls = MoveColumnStep if kind == "move" else SplitStep
            return cls(table, moved, new_table, link)
        if kind == "merge":
            joined = _joined_pairs(oracle)
            pairs = [
                (left, right)
                for i, left in enumerate(tables)
                for right in tables[i + 1 :]
                if not (set(spec.tables[left]) & set(spec.tables[right]))
                and frozenset((left, right)) not in joined
            ]
            if not pairs:
                continue
            left, right = rng.choice(pairs)
            return MergeStep(left, right, f"{left}_{right}_m{counter}")
        if kind == "fold":
            table, folded, link = rng.choice(foldable)
            return FoldStep(table, folded, link)
    return None


def _tables_of_step(step: Step) -> set[str]:
    if isinstance(step, RenameColumnStep):
        return {step.table}
    if isinstance(step, RenameTableStep):
        return {step.old, step.new}
    if isinstance(step, AddColumnStep):
        return {step.table}
    if isinstance(step, SplitStep):  # covers MoveColumnStep
        return {step.table, step.new_table}
    if isinstance(step, MergeStep):
        return {step.left, step.right, step.merged}
    if isinstance(step, FoldStep):
        return {step.table, step.folded_table}
    raise TypeError(f"unknown step {step!r}")


# ------------------------------------------------------------------ generation
def generate_workload(seed: int, config: CorpusConfig = CorpusConfig()) -> GeneratedWorkload:
    """The workload for *seed*: same seed, same workload, deterministically."""
    rng = random.Random(seed)
    name = f"corpus_s{seed}"
    source_spec = _sample_spec(rng, config, name)
    source_program = crud_program_for_spec(source_spec, name, config.num_functions)

    spec, oracle = source_spec, source_program
    steps: list[AppliedStep] = []
    foldable: list[tuple[str, str, str]] = []
    counter = 0
    attempts = 0
    while len(steps) < config.num_steps and attempts < 25 * config.num_steps:
        attempts += 1
        step = _sample_step(rng, spec, oracle, foldable, counter)
        if step is None:
            break
        try:
            spec_after, oracle_after = step.apply(
                spec.copy(f"{name}_step{len(steps) + 1}"), oracle
            )
        except (RefactoringError, RewriteError):
            continue
        counter += 1
        touched = _tables_of_step(step)
        foldable = [
            entry for entry in foldable
            if not ({entry[0], entry[1]} & touched)
        ]
        if isinstance(step, SplitStep) and not isinstance(step, FoldStep):
            foldable.append((step.table, step.new_table, step.link_column))
        if isinstance(step, FoldStep):
            foldable = [
                entry for entry in foldable if entry[1] != step.folded_table
            ]
        spec, oracle = spec_after, oracle_after
        steps.append(AppliedStep(step, spec_after, oracle_after))
    if not steps:
        raise RuntimeError(
            f"seed {seed}: could not apply any refactoring step "
            f"(schema {source_spec.tables})"
        )
    return GeneratedWorkload(name, seed, config, source_spec, source_program, steps)


def generate_corpus(
    seed: int, count: int, config: CorpusConfig = CorpusConfig()
) -> list[GeneratedWorkload]:
    """*count* workloads derived deterministically from one master *seed*."""
    master = random.Random(seed)
    workloads = []
    for _ in range(count):
        workloads.append(generate_workload(master.randrange(2**32), config))
    return workloads


def register_corpus(
    workloads: Sequence[GeneratedWorkload], registry: BenchmarkRegistry
) -> list[str]:
    """Register workloads as benchmarks into *registry* (opt-in by design:
    the global registry stays pinned to the 20 paper scenarios)."""
    names = []
    for workload in workloads:
        benchmark = workload.benchmark()
        registry.register(benchmark.name, lambda b=benchmark: b)
        names.append(benchmark.name)
    return names


# ----------------------------------------------------------- ingest derivation
def derive_refactoring_pair(spec: SchemaSpec, program: Program) -> list[Step]:
    """A deterministic split + merge over an ingested schema.

    Used by ``examples/corpus_ingest.py``: split the widest table that has
    movable columns, then merge the first column-disjoint, never-joined table
    pair.  Falls back to a column rename when the schema offers no sound
    merge pair, so the derivation always yields two steps.
    """
    steps: list[Step] = []
    widest = max(
        (t for t in spec.tables if _movable_columns(spec, t)),
        key=lambda t: (len(_movable_columns(spec, t)), t),
        default=None,
    )
    if widest is None:
        raise RefactoringError("schema has no table with movable columns")
    movable = _movable_columns(spec, widest)
    count = min(2, len(movable), len(spec.tables[widest]) - 1)
    steps.append(
        SplitStep(widest, tuple(movable[:count]), f"{widest}_detail", f"{widest}_link_id")
    )
    spec_after, oracle_after = steps[0].apply(spec, program)

    joined = _joined_pairs(oracle_after)
    tables = list(spec_after.tables)
    for i, left in enumerate(tables):
        for right in tables[i + 1 :]:
            if set(spec_after.tables[left]) & set(spec_after.tables[right]):
                continue
            if frozenset((left, right)) in joined:
                continue
            steps.append(MergeStep(left, right, f"{left}_{right}_merged"))
            return steps
    column = _movable_columns(spec_after, widest)
    fallback = column[0] if column else None
    if fallback is None:
        raise RefactoringError("schema offers neither a merge pair nor a rename")
    steps.append(RenameColumnStep(widest, fallback, f"{fallback}_renamed"))
    return steps
