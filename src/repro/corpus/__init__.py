"""The generated-workload corpus subsystem.

The registry's 20 reconstructed benchmarks pin the synthesizer on a fixed
set of hand-written scenarios; this package turns the whole stack into a
property-based test subject of its own with three feeders:

* :mod:`repro.corpus.ddl` — a stdlib SQL-DDL ingester/emitter, so real
  schema dumps become :class:`repro.datamodel.Schema` objects (with
  foreign-key inference) and generated schemas round-trip through DDL;
* :mod:`repro.corpus.generator` — a seeded, fully deterministic
  property-based workload generator: random schemas, random refactoring
  sequences from :mod:`repro.workloads.refactorings`, and — constructed in
  lock-step with each refactoring — the known-good *oracle* migration
  program (:mod:`repro.corpus.rewrite`), emitted as ordinary
  :class:`~repro.workloads.Benchmark` objects;
* :mod:`repro.corpus.chains` — multi-step migration chains (refactor
  A→B→C) composing per-step synthesized programs and verifying the
  composition against the composed oracle.

``python -m repro.corpus`` exposes ``ingest`` / ``generate`` / ``fuzz``;
the ``fuzz`` command replays seeded workloads through all three execution
backends and fails loudly on any verdict / canonicalization /
error-semantics divergence.  Everything is keyed by the generator seed:
record the seed, regenerate the workload, replay the pipeline.
"""

from repro.corpus.chains import (
    ChainResult,
    ChainStepResult,
    MigrationChain,
    sqlite_differential,
)
from repro.corpus.ddl import (
    DdlError,
    IngestReport,
    emit_ddl,
    ingest_ddl,
    parse_ddl,
    schema_signature,
    schemas_equal,
)
from repro.corpus.fuzz import FuzzDivergence, FuzzReport, fuzz_corpus, fuzz_workload
from repro.corpus.generator import (
    CorpusConfig,
    GeneratedWorkload,
    derive_refactoring_pair,
    generate_corpus,
    generate_workload,
    register_corpus,
)
from repro.corpus.rewrite import (
    AddColumnStep,
    FoldStep,
    MergeStep,
    MoveColumnStep,
    RenameColumnStep,
    RenameTableStep,
    RewriteError,
    SplitStep,
    Step,
)

__all__ = [
    "AddColumnStep",
    "ChainResult",
    "ChainStepResult",
    "CorpusConfig",
    "DdlError",
    "FoldStep",
    "FuzzDivergence",
    "FuzzReport",
    "GeneratedWorkload",
    "IngestReport",
    "MergeStep",
    "MigrationChain",
    "MoveColumnStep",
    "RenameColumnStep",
    "RenameTableStep",
    "RewriteError",
    "SplitStep",
    "Step",
    "derive_refactoring_pair",
    "emit_ddl",
    "fuzz_corpus",
    "fuzz_workload",
    "generate_corpus",
    "generate_workload",
    "ingest_ddl",
    "parse_ddl",
    "register_corpus",
    "schema_signature",
    "schemas_equal",
    "sqlite_differential",
]
