"""Command-line front of the corpus subsystem.

* ``python -m repro.corpus ingest schema.sql`` — parse a DDL dump, print the
  ingest report and the recovered schema (optionally re-emit canonical DDL).
* ``python -m repro.corpus generate --seed 7 --count 3`` — print generated
  workloads: schema shape, refactoring steps, oracle sizes.
* ``python -m repro.corpus fuzz --seed 7 --count 25`` — replay seeded
  workloads through all three execution backends; exits non-zero and names
  the seed + sequence on any divergence.  ``--seed-list`` writes a JSON
  replay artifact (the CI ``corpus-smoke`` job archives it).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.corpus.ddl import DdlError, emit_ddl, ingest_ddl
from repro.corpus.fuzz import ALL_BACKENDS, fuzz_corpus
from repro.corpus.generator import CorpusConfig, generate_corpus


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--tables", type=int, help="pin the schema width (tables)")
    parser.add_argument("--columns", type=int, help="pin the table depth (columns)")
    parser.add_argument("--steps", type=int, help="refactoring steps per workload")
    parser.add_argument("--functions", type=int, help="CRUD program size")
    parser.add_argument(
        "--fk-density", type=float, help="probability of a foreign-key link"
    )


def _config_from(args: argparse.Namespace) -> CorpusConfig:
    config = CorpusConfig()
    if args.fk_density is not None:
        config = CorpusConfig(fk_density=args.fk_density)
    return config.scaled(
        tables=args.tables,
        columns=args.columns,
        steps=args.steps,
        functions=args.functions,
    )


def _cmd_ingest(args: argparse.Namespace) -> int:
    text = Path(args.file).read_text()
    try:
        schema, report = ingest_ddl(
            text, name=args.name, infer_foreign_keys=not args.no_infer_fk
        )
    except DdlError as error:
        print(f"ingest failed: {error}", file=sys.stderr)
        return 1
    print(f"ingested {args.file}: {report.summary()}")
    print(schema.describe())
    for fk in schema.foreign_keys:
        print(f"  fk: {fk}")
    if report.skipped_statements:
        print(f"skipped: {', '.join(report.skipped_statements)}")
    if args.emit:
        print()
        print(emit_ddl(schema), end="")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    config = _config_from(args)
    for workload in generate_corpus(args.seed, args.count, config):
        source = workload.source_program
        print(
            f"{workload.name}: {source.schema.num_tables()} tables, "
            f"{source.schema.num_attributes()} attrs, "
            f"{source.num_functions()} functions"
        )
        for index, described in enumerate(workload.describe_steps(), 1):
            print(f"  step {index}: {described}")
        target = workload.target_schema
        print(
            f"  target: {target.num_tables()} tables, {target.num_attributes()} attrs"
        )
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    config = _config_from(args)
    report = fuzz_corpus(
        args.seed,
        args.count,
        config,
        backends=tuple(args.backends),
        max_sequences=args.max_sequences,
        random_sequences=args.random_sequences,
    )
    if args.seed_list:
        Path(args.seed_list).write_text(json.dumps(report.to_dict(), indent=2) + "\n")
        print(f"seed list written to {args.seed_list}")
    print(
        f"fuzzed {report.count} workloads (master seed {report.master_seed}) "
        f"across {', '.join(report.backends)}: "
        f"{report.sequences_checked} sequences checked"
    )
    if report.ok:
        print("all backends agree; every source matches its oracle")
        return 0
    print(f"{len(report.divergences)} DIVERGENCES:", file=sys.stderr)
    for divergence in report.divergences:
        print(str(divergence), file=sys.stderr)
    print(
        f"replay with: python -m repro.corpus fuzz --seed {report.master_seed} "
        f"--count {report.count}",
        file=sys.stderr,
    )
    return 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.corpus",
        description="DDL ingest, workload generation, and backend fuzzing.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    ingest = commands.add_parser("ingest", help="parse a SQL-DDL dump into a schema")
    ingest.add_argument("file", help="path to the DDL dump")
    ingest.add_argument("--name", default="ingested", help="schema name")
    ingest.add_argument(
        "--no-infer-fk", action="store_true", help="disable foreign-key inference"
    )
    ingest.add_argument(
        "--emit", action="store_true", help="re-emit the schema as canonical DDL"
    )
    ingest.set_defaults(func=_cmd_ingest)

    generate = commands.add_parser("generate", help="print seeded generated workloads")
    generate.add_argument("--seed", type=int, default=0, help="master seed")
    generate.add_argument("--count", type=int, default=3, help="workloads to generate")
    _add_config_arguments(generate)
    generate.set_defaults(func=_cmd_generate)

    fuzz = commands.add_parser(
        "fuzz", help="replay seeded workloads through all execution backends"
    )
    fuzz.add_argument("--seed", type=int, default=0, help="master seed")
    fuzz.add_argument("--count", type=int, default=25, help="workloads to fuzz")
    fuzz.add_argument(
        "--backends",
        nargs="+",
        default=list(ALL_BACKENDS),
        choices=list(ALL_BACKENDS),
        help="execution backends to compare",
    )
    fuzz.add_argument(
        "--max-sequences", type=int, default=40, help="bounded sequences per workload"
    )
    fuzz.add_argument(
        "--random-sequences", type=int, default=10,
        help="randomized sequences per workload",
    )
    fuzz.add_argument(
        "--seed-list", help="write the JSON replay artifact to this path"
    )
    _add_config_arguments(fuzz)
    fuzz.set_defaults(func=_cmd_fuzz)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
