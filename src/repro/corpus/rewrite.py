"""Oracle-program construction: rewrite a program across one refactoring step.

Each refactoring of :mod:`repro.workloads.refactorings` has a matching
:class:`Step` here that (a) applies the schema edit to a
:class:`~repro.workloads.SchemaSpec` and (b) rewrites a program over the old
schema into the *known-good oracle* program over the new schema — the
migration the synthesizer is supposed to rediscover.  The corpus generator
applies steps in lock-step with schema sampling, so every generated workload
ships with its oracle.

The rewrite rules and why they are sound for CRUD-shaped programs
(eq-with-parameter predicates only, inserts that supply every source column,
no ``TruePred``):

* **rename column / rename table** — pure substitution on attributes, chain
  tables, delete targets and insert keys.  Function names and parameters are
  untouched: the observable API stays fixed while storage moves, which is
  exactly the migration contract the verifier checks.
* **add column** — the program is re-rooted onto the new schema unchanged;
  inserts leave the new column unsupplied, so it receives a fresh
  :class:`~repro.engine.uid.UniqueValue` per row and no query can observe it.
* **split** (vertical split of ``T`` into ``T`` + ``N`` linked 1-1 by
  ``link``) — moved attributes remap ``(T,c) → (N,c)``; every join chain
  containing ``T`` is extended with ``N`` under the condition
  ``T.link = N.link``.  Because the link is 1-1 by construction, extending a
  chain never changes row multiplicity.  Inserts through the extended chain
  leave both link columns unsupplied, and the engine's insert-into-join
  semantics gives attributes linked by a join condition one shared fresh
  value — precisely the invariant that keeps the two halves paired.  Deletes
  on ``T`` delete from both tables.
* **merge** (``L`` + ``R`` → ``M``, disjoint columns) — table substitution.
  Sound only when no function joins ``L`` with ``R`` (the engine has no
  self-join, so such a chain cannot be rewritten — :class:`RewriteError`)
  and because rows originating from the *other* side carry fresh unique
  values in this side's columns: an eq-with-parameter predicate can never
  select them, so every query/update/delete still sees exactly its own rows.
* **fold** (inverse split: fold ``N`` back into ``T``) — drops ``N`` from
  every chain, removes the ``T.link = N.link`` condition and remaps
  ``(N,c) → (T,c)``.  Sound only when the program reaches ``N`` exclusively
  through the link join (true by construction when the fold undoes a split
  applied earlier in the same workload — the generator tracks that
  provenance); any other reference to the link column is a
  :class:`RewriteError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.datamodel.schema import Attribute, Schema
from repro.datamodel.types import DataType
from repro.lang.ast import (
    And,
    AttrRef,
    Comparison,
    Delete,
    Function,
    InQuery,
    Insert,
    JoinChain,
    Not,
    Operand,
    Or,
    Predicate,
    Program,
    Projection,
    Query,
    QueryFunction,
    Selection,
    Statement,
    TruePred,
    Update,
    UpdateFunction,
)
from repro.lang.visitors import validate_program
from repro.workloads.refactorings import (
    SchemaSpec,
    add_column,
    fold_table,
    merge_tables,
    rename_column,
    rename_table,
    split_table,
)


class RewriteError(Exception):
    """Raised when a program cannot be soundly rewritten across a step."""


# ---------------------------------------------------------------- rewriter core
class _Rewriter:
    """Structural program rewriter; steps override the mapping hooks."""

    def map_table(self, table: str) -> str:
        return table

    def map_attr(self, attr: Attribute) -> Attribute:
        return Attribute(self.map_table(attr.table), attr.name)

    def rewrite_chain(self, chain: JoinChain) -> JoinChain:
        return JoinChain(
            tuple(self.map_table(t) for t in chain.tables),
            tuple(
                (self.map_attr(left), self.map_attr(right))
                for left, right in chain.conditions
            ),
        )

    def rewrite_delete_tables(self, tables: tuple[str, ...]) -> tuple[str, ...]:
        return tuple(dict.fromkeys(self.map_table(t) for t in tables))

    def rewrite_operand(self, operand: Operand) -> Operand:
        if isinstance(operand, AttrRef):
            return AttrRef(self.map_attr(operand.attribute))
        return operand

    def rewrite_predicate(self, pred: Predicate) -> Predicate:
        if isinstance(pred, TruePred):
            return pred
        if isinstance(pred, Comparison):
            return Comparison(
                self.rewrite_operand(pred.left), pred.op, self.rewrite_operand(pred.right)
            )
        if isinstance(pred, InQuery):
            return InQuery(self.rewrite_operand(pred.operand), self.rewrite_query(pred.query))
        if isinstance(pred, And):
            return And(self.rewrite_predicate(pred.left), self.rewrite_predicate(pred.right))
        if isinstance(pred, Or):
            return Or(self.rewrite_predicate(pred.left), self.rewrite_predicate(pred.right))
        if isinstance(pred, Not):
            return Not(self.rewrite_predicate(pred.operand))
        raise TypeError(f"unknown predicate node {pred!r}")

    def rewrite_query(self, query: Query) -> Query:
        if isinstance(query, JoinChain):
            return self.rewrite_chain(query)
        if isinstance(query, Projection):
            return Projection(
                tuple(self.map_attr(a) for a in query.attributes),
                self.rewrite_query(query.source),
            )
        if isinstance(query, Selection):
            return Selection(self.rewrite_predicate(query.predicate), self.rewrite_query(query.source))
        raise TypeError(f"unknown query node {query!r}")

    def rewrite_statement(self, stmt: Statement) -> Statement:
        if isinstance(stmt, Insert):
            return Insert(
                self.rewrite_chain(stmt.target),
                tuple(
                    (self.map_attr(attr), self.rewrite_operand(operand))
                    for attr, operand in stmt.values
                ),
            )
        if isinstance(stmt, Delete):
            return Delete(
                self.rewrite_delete_tables(stmt.tables),
                self.rewrite_chain(stmt.source),
                self.rewrite_predicate(stmt.predicate),
            )
        if isinstance(stmt, Update):
            return Update(
                self.rewrite_chain(stmt.source),
                self.rewrite_predicate(stmt.predicate),
                self.map_attr(stmt.attribute),
                self.rewrite_operand(stmt.value),
            )
        raise TypeError(f"unknown statement node {stmt!r}")

    def rewrite_function(self, func: Function) -> Function:
        if isinstance(func, QueryFunction):
            return QueryFunction(func.name, func.params, self.rewrite_query(func.query))
        if isinstance(func, UpdateFunction):
            return UpdateFunction(
                func.name,
                func.params,
                tuple(self.rewrite_statement(s) for s in func.statements),
            )
        raise TypeError(f"unknown function node {func!r}")

    def rewrite_program(
        self, program: Program, schema_after: Schema, name: Optional[str] = None
    ) -> Program:
        functions = [self.rewrite_function(f) for f in program]
        return Program(name or program.name, schema_after, functions)


class _IdentityRewriter(_Rewriter):
    pass


class _RenameColumnRewriter(_Rewriter):
    def __init__(self, table: str, old: str, new: str):
        self.table, self.old, self.new = table, old, new

    def map_attr(self, attr: Attribute) -> Attribute:
        if attr.table == self.table and attr.name == self.old:
            return Attribute(self.table, self.new)
        return attr


class _RenameTableRewriter(_Rewriter):
    def __init__(self, old: str, new: str):
        self.old, self.new = old, new

    def map_table(self, table: str) -> str:
        return self.new if table == self.old else table


class _SplitRewriter(_Rewriter):
    def __init__(self, table: str, moved: tuple[str, ...], new_table: str, link: str):
        self.table = table
        self.moved = frozenset(moved)
        self.new_table = new_table
        self.link = link

    def map_attr(self, attr: Attribute) -> Attribute:
        if attr.table == self.table and attr.name in self.moved:
            return Attribute(self.new_table, attr.name)
        return attr

    def rewrite_chain(self, chain: JoinChain) -> JoinChain:
        tables = chain.tables
        conditions = tuple(
            (self.map_attr(left), self.map_attr(right)) for left, right in chain.conditions
        )
        if self.table in chain.tables:
            tables = tables + (self.new_table,)
            conditions = conditions + (
                (Attribute(self.table, self.link), Attribute(self.new_table, self.link)),
            )
        return JoinChain(tables, conditions)

    def rewrite_delete_tables(self, tables: tuple[str, ...]) -> tuple[str, ...]:
        if self.table in tables:
            return tables + (self.new_table,)
        return tables


class _MergeRewriter(_Rewriter):
    def __init__(self, left: str, right: str, merged: str):
        self.left, self.right, self.merged = left, right, merged

    def map_table(self, table: str) -> str:
        return self.merged if table in (self.left, self.right) else table

    def rewrite_chain(self, chain: JoinChain) -> JoinChain:
        if self.left in chain.tables and self.right in chain.tables:
            raise RewriteError(
                f"cannot merge {self.left!r} and {self.right!r}: "
                f"a function joins both (self-joins are unsupported)"
            )
        return super().rewrite_chain(chain)


class _FoldRewriter(_Rewriter):
    def __init__(self, table: str, folded: str, link: str):
        self.table, self.folded, self.link = table, folded, link
        self._link_pair = frozenset(
            (Attribute(table, link), Attribute(folded, link))
        )

    def map_attr(self, attr: Attribute) -> Attribute:
        if attr.name == self.link and attr.table in (self.table, self.folded):
            raise RewriteError(
                f"cannot fold {self.folded!r} into {self.table!r}: "
                f"program references link column {attr} outside the link join"
            )
        if attr.table == self.folded:
            return Attribute(self.table, attr.name)
        return attr

    def rewrite_chain(self, chain: JoinChain) -> JoinChain:
        if self.folded not in chain.tables:
            return super().rewrite_chain(chain)
        if self.table not in chain.tables:
            raise RewriteError(
                f"cannot fold {self.folded!r} into {self.table!r}: "
                f"a chain reaches {self.folded!r} without joining {self.table!r}"
            )
        tables = tuple(t for t in chain.tables if t != self.folded)
        conditions = tuple(
            (self.map_attr(left), self.map_attr(right))
            for left, right in chain.conditions
            if frozenset((left, right)) != self._link_pair
        )
        return JoinChain(tables, conditions)

    def rewrite_delete_tables(self, tables: tuple[str, ...]) -> tuple[str, ...]:
        if self.folded not in tables:
            return tables
        remaining = tuple(t for t in tables if t != self.folded)
        if not remaining:
            raise RewriteError(
                f"cannot fold {self.folded!r} into {self.table!r}: "
                f"a delete targets only {self.folded!r}"
            )
        return remaining


# ---------------------------------------------------------------------- steps
@dataclass(frozen=True)
class Step:
    """One refactoring step: a schema edit plus the matching oracle rewrite."""

    def apply_spec(self, spec: SchemaSpec) -> SchemaSpec:
        raise NotImplementedError

    def _rewriter(self) -> _Rewriter:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError

    def apply(
        self, spec: SchemaSpec, program: Program, *, name: Optional[str] = None
    ) -> tuple[SchemaSpec, Program]:
        """Apply this step: returns the new spec and the rewritten oracle program.

        The rewritten program is validated against the new schema, so an
        unsound rewrite surfaces here as an error rather than as a silent
        wrong oracle downstream.
        """
        spec_after = self.apply_spec(spec)
        schema_after = spec_after.build()
        rewritten = self._rewriter().rewrite_program(program, schema_after, name)
        validate_program(rewritten)
        return spec_after, rewritten


@dataclass(frozen=True)
class RenameColumnStep(Step):
    table: str
    old: str
    new: str

    def apply_spec(self, spec: SchemaSpec) -> SchemaSpec:
        return rename_column(spec, self.table, self.old, self.new)

    def _rewriter(self) -> _Rewriter:
        return _RenameColumnRewriter(self.table, self.old, self.new)

    def describe(self) -> str:
        return f"rename column {self.table}.{self.old} -> {self.new}"


@dataclass(frozen=True)
class RenameTableStep(Step):
    old: str
    new: str

    def apply_spec(self, spec: SchemaSpec) -> SchemaSpec:
        return rename_table(spec, self.old, self.new)

    def _rewriter(self) -> _Rewriter:
        return _RenameTableRewriter(self.old, self.new)

    def describe(self) -> str:
        return f"rename table {self.old} -> {self.new}"


@dataclass(frozen=True)
class AddColumnStep(Step):
    table: str
    column: str
    dtype: DataType

    def apply_spec(self, spec: SchemaSpec) -> SchemaSpec:
        return add_column(spec, self.table, self.column, self.dtype)

    def _rewriter(self) -> _Rewriter:
        return _IdentityRewriter()

    def describe(self) -> str:
        return f"add column {self.table}.{self.column} ({self.dtype.name.lower()})"


@dataclass(frozen=True)
class SplitStep(Step):
    table: str
    moved_columns: tuple[str, ...]
    new_table: str
    link_column: str

    def apply_spec(self, spec: SchemaSpec) -> SchemaSpec:
        return split_table(
            spec, self.table, self.moved_columns, self.new_table, self.link_column
        )

    def _rewriter(self) -> _Rewriter:
        return _SplitRewriter(
            self.table, self.moved_columns, self.new_table, self.link_column
        )

    def describe(self) -> str:
        moved = ", ".join(self.moved_columns)
        return f"split {self.table} -> {self.new_table} (move {moved}; link {self.link_column})"


@dataclass(frozen=True)
class MoveColumnStep(SplitStep):
    """Move one column into a freshly created table (a one-column split)."""

    def describe(self) -> str:
        return (
            f"move column {self.table}.{self.moved_columns[0]} -> "
            f"{self.new_table} (link {self.link_column})"
        )


@dataclass(frozen=True)
class MergeStep(Step):
    left: str
    right: str
    merged: str

    def apply_spec(self, spec: SchemaSpec) -> SchemaSpec:
        return merge_tables(spec, self.left, self.right, self.merged)

    def _rewriter(self) -> _Rewriter:
        return _MergeRewriter(self.left, self.right, self.merged)

    def describe(self) -> str:
        return f"merge {self.left} + {self.right} -> {self.merged}"


@dataclass(frozen=True)
class FoldStep(Step):
    table: str
    folded_table: str
    link_column: str

    def apply_spec(self, spec: SchemaSpec) -> SchemaSpec:
        return fold_table(spec, self.table, self.folded_table, self.link_column)

    def _rewriter(self) -> _Rewriter:
        return _FoldRewriter(self.table, self.folded_table, self.link_column)

    def describe(self) -> str:
        return f"fold {self.folded_table} back into {self.table} (link {self.link_column})"
