"""Multi-step migration chains: synthesize A→B→C and verify the composition.

A :class:`MigrationChain` drives the synthesizer along a generated
workload's step sequence: step *i* migrates the *previously synthesized*
program (not the oracle) onto schema *i*, so errors would compound exactly
as they would in a real staged migration.  The end state is then checked
two independent ways:

* the composed synthesized program is verified equivalent to the composed
  oracle with the existing :class:`~repro.equivalence.BoundedVerifier`
  (both programs live on the final schema and expose the same function
  signatures, so this is an ordinary cross-schema bounded check); and
* both programs are replayed through the sqlite3 differential oracle
  (:mod:`repro.equivalence.sql_oracle`) on a slice of bounded + randomized
  sequences — an engine-independent second opinion on the same verdict.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Optional

from repro.core.config import SynthesisConfig
from repro.core.result import SynthesisResult
from repro.core.synthesizer import migrate
from repro.equivalence.invocation import SequenceGenerator
from repro.equivalence.result_compare import canonicalize_outputs
from repro.equivalence.sql_oracle import OracleUnsupported, SqliteOracle
from repro.equivalence.verifier import BoundedVerifier, VerificationResult
from repro.lang.ast import Program
from repro.corpus.generator import GeneratedWorkload
from repro.corpus.rewrite import Step


@dataclass
class ChainStepResult:
    """One synthesis hop of the chain."""

    step: Step
    result: SynthesisResult

    @property
    def succeeded(self) -> bool:
        return self.result.succeeded


@dataclass
class ChainResult:
    """The outcome of a whole chain run."""

    workload: GeneratedWorkload
    steps: list[ChainStepResult] = field(default_factory=list)
    #: Bounded verification of composed-synthesized vs composed-oracle
    #: (``None`` when a synthesis hop already failed).
    verification: Optional[VerificationResult] = None
    #: Sequences replayed through the sqlite oracle on both programs.
    sqlite_compared: int = 0
    sqlite_agreed: bool = True
    failure: Optional[str] = None

    @property
    def succeeded(self) -> bool:
        return (
            self.failure is None
            and all(step.succeeded for step in self.steps)
            and self.verification is not None
            and self.verification.equivalent
            and self.sqlite_agreed
        )

    @property
    def final_program(self) -> Optional[Program]:
        if self.steps and self.steps[-1].succeeded:
            return self.steps[-1].result.program
        return None

    def summary(self) -> str:
        hops = " -> ".join(step.step.describe() for step in self.steps)
        status = "ok" if self.succeeded else f"FAILED ({self.failure})"
        return f"chain[{self.workload.name}] {hops}: {status}"


def sqlite_differential(
    source: Program,
    candidate: Program,
    *,
    max_sequences: int = 24,
    random_sequences: int = 8,
    seed: int = 0,
) -> tuple[int, bool]:
    """Replay sequences through sqlite3 on both programs; compare canonically.

    Returns ``(compared, agreed)``.  Sequences the oracle cannot translate
    (:class:`OracleUnsupported`) are skipped — they never count as compared.
    """
    generator = SequenceGenerator(programs=[source, candidate])
    sequences = itertools.chain(
        itertools.islice(generator.sequences(), max_sequences),
        generator.random_sequences(
            random_sequences, max_length=4, rng=random.Random(seed)
        ),
    )
    compared = 0
    for sequence in sequences:
        source_oracle = SqliteOracle(source)
        candidate_oracle = SqliteOracle(candidate)
        try:
            expected = source_oracle.run(sequence)
            actual = candidate_oracle.run(sequence)
        except OracleUnsupported:
            continue
        finally:
            source_oracle.close()
            candidate_oracle.close()
        compared += 1
        if canonicalize_outputs(expected) != canonicalize_outputs(actual):
            return compared, False
    return compared, True


class MigrationChain:
    """Synthesize along a workload's refactoring steps and verify the result."""

    def __init__(
        self,
        workload: GeneratedWorkload,
        config: Optional[SynthesisConfig] = None,
        *,
        verifier: Optional[BoundedVerifier] = None,
        sqlite_sequences: int = 24,
    ):
        self.workload = workload
        self.config = config or SynthesisConfig.fast()
        self.verifier = verifier or BoundedVerifier(
            max_updates=2,
            random_sequences=50,
            execution_backend=self.config.execution_backend,
        )
        self.sqlite_sequences = sqlite_sequences

    def run(self) -> ChainResult:
        outcome = ChainResult(self.workload)
        current = self.workload.source_program
        for applied in self.workload.steps:
            result = migrate(current, applied.oracle.schema, self.config)
            outcome.steps.append(ChainStepResult(applied.step, result))
            if not result.succeeded:
                outcome.failure = (
                    f"synthesis failed at step {len(outcome.steps)} "
                    f"({applied.step.describe()})"
                )
                return outcome
            current = result.program
        oracle = self.workload.oracle_program
        outcome.verification = self.verifier.verify(oracle, current)
        if not outcome.verification.equivalent:
            outcome.failure = (
                "composed program diverges from composed oracle on "
                f"{outcome.verification.counterexample}"
            )
            return outcome
        outcome.sqlite_compared, outcome.sqlite_agreed = sqlite_differential(
            oracle, current, max_sequences=self.sqlite_sequences
        )
        if not outcome.sqlite_agreed:
            outcome.failure = "sqlite differential oracle disagrees on composition"
        return outcome
