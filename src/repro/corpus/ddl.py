"""SQL-DDL ingest and emit: real schema dumps ⇄ :class:`~repro.datamodel.Schema`.

The ingester is a small stdlib recursive-descent parser over a hand-rolled
token stream, not a SQL frontend: it understands exactly the subset a schema
dump needs — ``CREATE TABLE`` bodies with column definitions, inline and
table-level ``PRIMARY KEY`` / ``FOREIGN KEY ... REFERENCES`` constraints,
``ALTER TABLE ... ADD ... FOREIGN KEY`` statements (the pg_dump style), and a
type map onto the paper's four-value datamodel.  Everything else in a dump
(``SET``, ``DROP``, ``CREATE INDEX``, ``INSERT`` …) is skipped and counted in
the :class:`IngestReport`.

Type coarsening is deliberate and documented: the paper's value model has
exactly INT / STRING / BINARY / BOOL, so exact-valued numerics
(``DECIMAL``/``NUMERIC``/``MONEY``) ingest as INT (amounts-in-cents) and
temporal types ingest as STRING — matching how the reconstructed registry
benchmarks already model dates (e.g. ``OrderDate`` as STRING).  Genuinely
unrepresentable types (floats, JSON, arrays) raise :class:`DdlError`.

Malformed input — torn statements, unbalanced parentheses, empty table
bodies, references to unknown tables — raises :class:`DdlError` (a
``ValueError`` subtype) naming the offending construct, never a bare
``ValueError`` from deep inside the datamodel.

:func:`emit_ddl` is the inverse feeder: any :class:`Schema` renders as
standard DDL such that ``parse_ddl(emit_ddl(s))`` reproduces ``s`` exactly
(table order, column order, types, primary keys, foreign keys) — the
Hypothesis round-trip property in ``tests/test_corpus_ddl.py`` pins this.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.datamodel.schema import Schema, SchemaError
from repro.datamodel.types import DataType


class DdlError(ValueError):
    """Raised when a DDL dump cannot be ingested (torn or unsupported input)."""


@dataclass
class IngestReport:
    """What an ingest run saw: parsed tables, skipped statements, FK counts."""

    tables: list[str] = field(default_factory=list)
    skipped_statements: list[str] = field(default_factory=list)
    declared_foreign_keys: int = 0
    inferred_foreign_keys: int = 0
    ignored_composite_keys: list[str] = field(default_factory=list)

    def summary(self) -> str:
        return (
            f"{len(self.tables)} tables, "
            f"{self.declared_foreign_keys} declared FKs, "
            f"{self.inferred_foreign_keys} inferred FKs, "
            f"{len(self.skipped_statements)} skipped statements"
        )


# ---------------------------------------------------------------- type map
#: Textual SQL type → datamodel type.  Exact-numeric and temporal types are
#: coarsened (see module docstring); anything absent here is unsupported.
_TYPE_MAP: dict[str, DataType] = {
    # integers (and exact numerics, coarsened to amounts-in-cents)
    "INT": DataType.INT,
    "INTEGER": DataType.INT,
    "BIGINT": DataType.INT,
    "SMALLINT": DataType.INT,
    "TINYINT": DataType.INT,
    "MEDIUMINT": DataType.INT,
    "SERIAL": DataType.INT,
    "BIGSERIAL": DataType.INT,
    "SMALLSERIAL": DataType.INT,
    "DECIMAL": DataType.INT,
    "NUMERIC": DataType.INT,
    "MONEY": DataType.INT,
    # strings (and temporal types, stored textually as the registry does)
    "VARCHAR": DataType.STRING,
    "CHARACTER": DataType.STRING,
    "CHAR": DataType.STRING,
    "TEXT": DataType.STRING,
    "STRING": DataType.STRING,
    "UUID": DataType.STRING,
    "CITEXT": DataType.STRING,
    "ENUM": DataType.STRING,
    "DATE": DataType.STRING,
    "DATETIME": DataType.STRING,
    "TIME": DataType.STRING,
    "TIMESTAMP": DataType.STRING,
    "TIMESTAMPTZ": DataType.STRING,
    # binary
    "BLOB": DataType.BINARY,
    "TINYBLOB": DataType.BINARY,
    "MEDIUMBLOB": DataType.BINARY,
    "LONGBLOB": DataType.BINARY,
    "BINARY": DataType.BINARY,
    "VARBINARY": DataType.BINARY,
    "BYTEA": DataType.BINARY,
    # booleans
    "BOOL": DataType.BOOL,
    "BOOLEAN": DataType.BOOL,
    "BIT": DataType.BOOL,
}

#: Emit map: datamodel type → canonical DDL spelling (round-trips via
#: ``_TYPE_MAP``).
_EMIT_MAP: dict[DataType, str] = {
    DataType.INT: "INTEGER",
    DataType.STRING: "VARCHAR(255)",
    DataType.BINARY: "BLOB",
    DataType.BOOL: "BOOLEAN",
}

# Column modifiers that carry no schema information for our datamodel and are
# consumed silently (with their parenthesised arguments, where applicable).
_IGNORED_MODIFIERS = {
    "NOT",
    "NULL",
    "UNIQUE",
    "AUTO_INCREMENT",
    "AUTOINCREMENT",
    "UNSIGNED",
    "SIGNED",
    "COLLATE",
    "COMMENT",
    "DEFAULT",
    "CHECK",
    "GENERATED",
    "ON",
}


# ---------------------------------------------------------------- tokenizer
_TOKEN_RE = re.compile(
    r"""
    \s+
  | --[^\n]*            # line comment
  | \#[^\n]*            # MySQL-style line comment
  | /\*.*?\*/           # block comment (non-nested)
  | "(?:[^"]|"")*"      # double-quoted identifier
  | `[^`]*`             # backquoted identifier
  | \[[^\]]*\]          # bracketed identifier
  | '(?:[^']|'')*'      # string literal
  | [A-Za-z_][A-Za-z0-9_$]*
  | -?\d+(?:\.\d+)?
  | [(),;.=<>*+-]
    """,
    re.VERBOSE | re.DOTALL,
)


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            snippet = text[pos : pos + 20].splitlines()[0]
            raise DdlError(f"unrecognised DDL input at {snippet!r}")
        pos = match.end()
        token = match.group(0)
        if token[0].isspace() or token.startswith(("--", "#", "/*")):
            continue
        tokens.append(token)
    return tokens


def _unquote(token: str) -> str:
    if token.startswith('"') and token.endswith('"'):
        return token[1:-1].replace('""', '"')
    if token.startswith("`") and token.endswith("`"):
        return token[1:-1]
    if token.startswith("[") and token.endswith("]"):
        return token[1:-1]
    return token


def _is_identifier(token: str) -> bool:
    if token.startswith(('"', "`", "[")):
        return True
    return bool(re.fullmatch(r"[A-Za-z_][A-Za-z0-9_$]*", token))


class _TokenStream:
    """Cursor over the token list with keyword-aware helpers."""

    def __init__(self, tokens: list[str]):
        self.tokens = tokens
        self.pos = 0

    def at_end(self) -> bool:
        return self.pos >= len(self.tokens)

    def peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def peek_keyword(self) -> str | None:
        token = self.peek()
        return token.upper() if token is not None and not token.startswith(('"', "`", "[", "'")) else None

    def next(self, context: str) -> str:
        if self.at_end():
            raise DdlError(f"torn DDL: input ended inside {context}")
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def match_keyword(self, *keywords: str) -> bool:
        if self.peek_keyword() in keywords:
            self.pos += 1
            return True
        return False

    def expect(self, literal: str, context: str) -> None:
        token = self.next(context)
        if token.upper() != literal.upper():
            raise DdlError(f"expected {literal!r} in {context}, found {token!r}")

    def identifier(self, context: str) -> str:
        token = self.next(context)
        if not _is_identifier(token):
            raise DdlError(f"expected identifier in {context}, found {token!r}")
        return _unquote(token)

    def skip_parenthesized(self, context: str) -> None:
        """Consume a balanced ``( ... )`` group (already positioned at '(')."""
        self.expect("(", context)
        depth = 1
        while depth:
            token = self.next(f"parenthesised group in {context}")
            if token == "(":
                depth += 1
            elif token == ")":
                depth -= 1

    def skip_statement(self) -> None:
        """Consume tokens through the next top-level ';' (or EOF)."""
        depth = 0
        while not self.at_end():
            token = self.next("statement")
            if token == "(":
                depth += 1
            elif token == ")":
                depth -= 1
            elif token == ";" and depth == 0:
                return
        if depth != 0:
            raise DdlError("torn DDL: unbalanced parentheses at end of input")


# ---------------------------------------------------------------- parsing
@dataclass
class _PendingForeignKey:
    source_table: str
    source_column: str
    target_table: str
    target_column: str
    context: str


@dataclass
class _ParsedTable:
    name: str
    columns: dict[str, DataType] = field(default_factory=dict)
    primary_key: str | None = None


def _parse_type(stream: _TokenStream, table: str, column: str) -> DataType:
    token = stream.next(f"type of column {table}.{column}")
    keyword = token.upper()
    # Two-word spellings: DOUBLE PRECISION, CHARACTER VARYING, etc.
    if keyword == "CHARACTER" and stream.match_keyword("VARYING"):
        keyword = "VARCHAR"
    if keyword in ("TIMESTAMP", "TIME") and stream.peek_keyword() in ("WITH", "WITHOUT"):
        stream.next("timestamp qualifier")  # WITH / WITHOUT
        stream.expect("TIME", f"type of column {table}.{column}")
        stream.expect("ZONE", f"type of column {table}.{column}")
    dtype = _TYPE_MAP.get(keyword)
    if dtype is None:
        raise DdlError(
            f"unsupported column type {token!r} for column {table}.{column}"
        )
    if stream.peek() == "(":
        stream.skip_parenthesized(f"type arguments of {table}.{column}")
    return dtype


def _parse_column_list(stream: _TokenStream, context: str) -> list[str]:
    stream.expect("(", context)
    columns = [stream.identifier(context)]
    while stream.match_keyword(","):
        columns.append(stream.identifier(context))
    stream.expect(")", context)
    return columns


def _parse_references(
    stream: _TokenStream, source_table: str, source_column: str
) -> _PendingForeignKey:
    context = f"REFERENCES clause of {source_table}.{source_column}"
    target_table = stream.identifier(context)
    if stream.peek() == ".":
        stream.next(context)
        target_table = stream.identifier(context)
    if stream.peek() == "(":
        target_columns = _parse_column_list(stream, context)
        if len(target_columns) != 1:
            raise DdlError(
                f"composite foreign key targets are unsupported in {context}"
            )
        target_column = target_columns[0]
    else:
        target_column = source_column
    # ON DELETE / ON UPDATE actions carry no schema information.
    while stream.peek_keyword() == "ON":
        stream.next(context)
        stream.next(context)  # DELETE / UPDATE
        action = stream.next(context).upper()
        if action in ("NO", "SET"):
            stream.next(context)  # ACTION / NULL / DEFAULT
    return _PendingForeignKey(
        source_table, source_column, target_table, target_column, context
    )


def _parse_table_body(
    stream: _TokenStream,
    table: _ParsedTable,
    pending_fks: list[_PendingForeignKey],
    report: IngestReport,
) -> None:
    context = f"body of table {table.name!r}"
    stream.expect("(", context)
    if stream.peek() == ")":
        raise DdlError(f"table {table.name!r} has an empty body")
    while True:
        keyword = stream.peek_keyword()
        if keyword == "CONSTRAINT":
            stream.next(context)
            stream.identifier(f"constraint name in {context}")
            keyword = stream.peek_keyword()
        if keyword == "PRIMARY":
            stream.next(context)
            stream.expect("KEY", context)
            columns = _parse_column_list(stream, f"PRIMARY KEY of {table.name!r}")
            for column in columns:
                if column not in table.columns:
                    raise DdlError(
                        f"PRIMARY KEY of {table.name!r} names unknown column {column!r}"
                    )
            if len(columns) == 1:
                table.primary_key = columns[0]
            else:
                # Composite keys are outside the paper's datamodel; the table
                # ingests without a primary key and the report records it.
                report.ignored_composite_keys.append(table.name)
        elif keyword == "FOREIGN":
            stream.next(context)
            stream.expect("KEY", context)
            columns = _parse_column_list(stream, f"FOREIGN KEY of {table.name!r}")
            if len(columns) != 1:
                raise DdlError(
                    f"composite foreign keys are unsupported on table {table.name!r}"
                )
            stream.expect("REFERENCES", context)
            pending_fks.append(_parse_references(stream, table.name, columns[0]))
        elif keyword in ("UNIQUE", "KEY", "INDEX", "CHECK", "FULLTEXT", "SPATIAL"):
            # Index-ish table constraints: skip the keyword run and its args.
            while stream.peek() not in ("(", ",", ")", None):
                stream.next(context)
            if stream.peek() == "(":
                stream.skip_parenthesized(context)
        else:
            column = stream.identifier(f"column definition in {context}")
            if column in table.columns:
                raise DdlError(f"duplicate column {table.name}.{column}")
            dtype = _parse_type(stream, table.name, column)
            table.columns[column] = dtype
            # Column modifiers until ',' or ')'.
            while True:
                modifier = stream.peek_keyword()
                if stream.peek() in (",", ")", None):
                    break
                if modifier == "PRIMARY":
                    stream.next(context)
                    stream.expect("KEY", f"column {table.name}.{column}")
                    table.primary_key = column
                elif modifier == "REFERENCES":
                    stream.next(context)
                    pending_fks.append(_parse_references(stream, table.name, column))
                elif modifier in _IGNORED_MODIFIERS or _is_identifier(stream.peek() or ""):
                    stream.next(context)
                    if stream.peek() == "(":
                        stream.skip_parenthesized(context)
                elif stream.peek() == "(":
                    stream.skip_parenthesized(context)
                else:
                    stream.next(context)  # literals in DEFAULT clauses etc.
        token = stream.next(context)
        if token == ")":
            break
        if token != ",":
            raise DdlError(f"expected ',' or ')' in {context}, found {token!r}")


def _parse_create_table(
    stream: _TokenStream,
    tables: dict[str, _ParsedTable],
    pending_fks: list[_PendingForeignKey],
    report: IngestReport,
) -> None:
    context = "CREATE TABLE statement"
    if stream.match_keyword("IF"):
        stream.expect("NOT", context)
        stream.expect("EXISTS", context)
    name = stream.identifier(context)
    if stream.peek() == ".":  # schema-qualified: keep the last component
        stream.next(context)
        name = stream.identifier(context)
    if name in tables:
        raise DdlError(f"table {name!r} is declared twice")
    table = _ParsedTable(name)
    _parse_table_body(stream, table, pending_fks, report)
    # Trailing table options (ENGINE=InnoDB etc.) through the ';'.
    if stream.peek() == ";":
        stream.next(context)
    elif not stream.at_end():
        stream.skip_statement()
    tables[name] = table
    report.tables.append(name)


def _parse_alter_table(
    stream: _TokenStream,
    tables: dict[str, _ParsedTable],
    pending_fks: list[_PendingForeignKey],
    report: IngestReport,
) -> None:
    context = "ALTER TABLE statement"
    stream.match_keyword("ONLY")
    name = stream.identifier(context)
    if stream.peek() == ".":
        stream.next(context)
        name = stream.identifier(context)
    if not stream.match_keyword("ADD"):
        report.skipped_statements.append(f"ALTER TABLE {name} …")
        stream.skip_statement()
        return
    if stream.match_keyword("CONSTRAINT"):
        stream.identifier(f"constraint name in {context}")
    keyword = stream.peek_keyword()
    if keyword == "PRIMARY":
        stream.next(context)
        stream.expect("KEY", context)
        columns = _parse_column_list(stream, f"PRIMARY KEY of {name!r}")
        if name not in tables:
            raise DdlError(f"ALTER TABLE references unknown table {name!r}")
        if len(columns) == 1:
            tables[name].primary_key = columns[0]
        else:
            report.ignored_composite_keys.append(name)
    elif keyword == "FOREIGN":
        stream.next(context)
        stream.expect("KEY", context)
        columns = _parse_column_list(stream, f"FOREIGN KEY of {name!r}")
        if len(columns) != 1:
            raise DdlError(f"composite foreign keys are unsupported on table {name!r}")
        stream.expect("REFERENCES", context)
        pending_fks.append(_parse_references(stream, name, columns[0]))
    else:
        report.skipped_statements.append(f"ALTER TABLE {name} ADD …")
    stream.skip_statement()


def _infer_foreign_keys(
    tables: dict[str, _ParsedTable],
    declared: set[tuple[str, str]],
    report: IngestReport,
) -> list[tuple[str, str, str, str]]:
    """Infer FKs by the naming convention the CRUD generator uses.

    A column of table T points at table U when it is named exactly like U's
    primary-key column (or like ``<U>_id`` when U declares that column), the
    types match, and T itself doesn't own that name as its primary key.
    """
    inferred: list[tuple[str, str, str, str]] = []
    for source in tables.values():
        for column, dtype in source.columns.items():
            if (source.name, column) in declared:
                continue
            if source.primary_key == column:
                continue
            for target in tables.values():
                if target.name == source.name:
                    continue
                candidate = None
                if target.primary_key == column:
                    candidate = column
                elif column == f"{target.name}_id" and column in target.columns:
                    candidate = column
                if candidate is None or target.columns.get(candidate) != dtype:
                    continue
                inferred.append((source.name, column, target.name, candidate))
                report.inferred_foreign_keys += 1
                break
    return inferred


def ingest_ddl(
    text: str,
    *,
    name: str = "ingested",
    infer_foreign_keys: bool = True,
) -> tuple[Schema, IngestReport]:
    """Parse a DDL dump into a :class:`Schema` plus an :class:`IngestReport`."""
    stream = _TokenStream(_tokenize(text))
    tables: dict[str, _ParsedTable] = {}
    pending_fks: list[_PendingForeignKey] = []
    report = IngestReport()
    while not stream.at_end():
        if stream.match_keyword(";"):
            continue
        keyword = stream.peek_keyword()
        if keyword == "CREATE":
            stream.next("statement")
            if stream.match_keyword("TABLE"):
                _parse_create_table(stream, tables, pending_fks, report)
                continue
            skipped = stream.peek() or ""
            report.skipped_statements.append(f"CREATE {skipped} …")
            stream.skip_statement()
        elif keyword == "ALTER":
            stream.next("statement")
            if stream.peek_keyword() == "TABLE":
                stream.next("statement")
                _parse_alter_table(stream, tables, pending_fks, report)
            else:
                report.skipped_statements.append("ALTER …")
                stream.skip_statement()
        else:
            report.skipped_statements.append(f"{stream.peek()} …")
            stream.skip_statement()
    if not tables:
        raise DdlError("no CREATE TABLE statements found in input")

    schema = Schema(name)
    for table in tables.values():
        schema.add_table(table.name, table.columns, primary_key=table.primary_key)
    declared: set[tuple[str, str]] = set()
    for fk in pending_fks:
        for table_name, column in (
            (fk.source_table, fk.source_column),
            (fk.target_table, fk.target_column),
        ):
            if table_name not in tables:
                raise DdlError(f"unknown table {table_name!r} in {fk.context}")
            if column not in tables[table_name].columns:
                raise DdlError(
                    f"unknown column {table_name}.{column} in {fk.context}"
                )
        try:
            schema.add_foreign_key(
                f"{fk.source_table}.{fk.source_column}",
                f"{fk.target_table}.{fk.target_column}",
            )
        except SchemaError as exc:
            raise DdlError(f"invalid foreign key in {fk.context}: {exc}") from exc
        declared.add((fk.source_table, fk.source_column))
        report.declared_foreign_keys += 1
    if infer_foreign_keys:
        for source_table, source_column, target_table, target_column in (
            _infer_foreign_keys(tables, declared, report)
        ):
            schema.add_foreign_key(
                f"{source_table}.{source_column}", f"{target_table}.{target_column}"
            )
    return schema, report


def parse_ddl(
    text: str, *, name: str = "ingested", infer_foreign_keys: bool = True
) -> Schema:
    """:func:`ingest_ddl` without the report, for callers that just want the schema."""
    schema, _ = ingest_ddl(text, name=name, infer_foreign_keys=infer_foreign_keys)
    return schema


# ---------------------------------------------------------------- emitting
def _quote(identifier: str) -> str:
    return '"' + identifier.replace('"', '""') + '"'


def emit_ddl(schema: Schema) -> str:
    """Render *schema* as DDL that :func:`parse_ddl` ingests back unchanged."""
    statements: list[str] = []
    fks_by_source: dict[str, list] = {}
    for fk in schema.foreign_keys:
        fks_by_source.setdefault(fk.source.table, []).append(fk)
    for table_name, table in schema.tables.items():
        lines = []
        for attr in table.attributes:
            line = f"    {_quote(attr.name)} {_EMIT_MAP[table.type_of(attr.name)]}"
            if attr.name == table.primary_key:
                line += " PRIMARY KEY"
            lines.append(line)
        for fk in fks_by_source.get(table_name, []):
            lines.append(
                f"    FOREIGN KEY ({_quote(fk.source.name)}) "
                f"REFERENCES {_quote(fk.target.table)} ({_quote(fk.target.name)})"
            )
        body = ",\n".join(lines)
        statements.append(f"CREATE TABLE {_quote(table_name)} (\n{body}\n);")
    return "\n\n".join(statements) + "\n"


# ---------------------------------------------------------------- equality
def schema_signature(schema: Schema):
    """A canonical, comparable description of a schema's structure.

    Tables and columns keep declaration order (round-tripping preserves it);
    foreign keys compare as a set because emit groups them per source table.
    """
    return (
        tuple(
            (
                table_name,
                tuple(
                    (attr.name, table.type_of(attr.name)) for attr in table.attributes
                ),
                table.primary_key,
            )
            for table_name, table in schema.tables.items()
        ),
        frozenset(
            (fk.source.table, fk.source.name, fk.target.table, fk.target.name)
            for fk in schema.foreign_keys
        ),
    )


def schemas_equal(left: Schema, right: Schema) -> bool:
    """Structural equality on tables, column order, types, PKs, and FKs."""
    return schema_signature(left) == schema_signature(right)
