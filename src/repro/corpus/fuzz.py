"""Backend-agreement fuzzing over generated workloads.

:func:`fuzz_workload` replays a generated workload's bounded + randomized
invocation sequences through all three execution backends (interpreter,
compiled, columnar) on *both* the source program and its composed oracle,
and flags:

* **canonical-output divergence** — two backends return different
  canonicalized outputs for the same (program, sequence);
* **error-semantics divergence** — backends disagree on whether a sequence
  raises, or raise different exception classes;
* **verdict divergence** — a backend's source-vs-oracle equivalence verdict
  differs from another backend's, or the source disagrees with its
  known-good oracle at all (the generated-oracle soundness property).

No synthesis runs here: fuzzing pins the execution/equivalence stack on
unbounded generated input, cheaply enough for CI.  Everything derives from
the master seed, so a red run replays with ``python -m repro.corpus fuzz
--seed <S> --count <N>``.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.engine.compiler import ProgramCompiler, make_runner
from repro.equivalence.invocation import SequenceGenerator, format_sequence
from repro.equivalence.result_compare import canonicalize_outputs
from repro.corpus.generator import CorpusConfig, GeneratedWorkload, generate_workload

#: The three execution backends every workload must agree across.
ALL_BACKENDS = ("interpreter", "compiled", "columnar")


@dataclass
class FuzzDivergence:
    """One disagreement, with everything needed to replay it."""

    workload: str
    seed: int
    kind: str  # "outputs" | "error" | "verdict"
    program: str  # "source" | "oracle" | "source-vs-oracle"
    sequence: str
    detail: str

    def __str__(self) -> str:
        return (
            f"[{self.kind}] workload {self.workload} (seed {self.seed}) "
            f"on {self.program}: {self.detail}\n  sequence: {self.sequence}"
        )


@dataclass
class FuzzReport:
    """Aggregate outcome of a fuzzing run, serializable for CI artifacts."""

    master_seed: int
    count: int
    backends: tuple[str, ...]
    workload_seeds: list[int] = field(default_factory=list)
    workloads: list[str] = field(default_factory=list)
    sequences_checked: int = 0
    divergences: list[FuzzDivergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def to_dict(self) -> dict:
        return {
            "master_seed": self.master_seed,
            "count": self.count,
            "backends": list(self.backends),
            "workload_seeds": self.workload_seeds,
            "workloads": self.workloads,
            "sequences_checked": self.sequences_checked,
            "ok": self.ok,
            "divergences": [vars(d) for d in self.divergences],
        }


def _outcome(run, program, sequence):
    """(canonical_outputs, error_class) — exactly one side is not ``None``."""
    try:
        return canonicalize_outputs(run(program, sequence)), None
    except Exception as error:  # noqa: BLE001 - error *class* is the datum
        return None, type(error).__name__


def fuzz_workload(
    workload: GeneratedWorkload,
    *,
    backends: Sequence[str] = ALL_BACKENDS,
    max_sequences: int = 40,
    random_sequences: int = 10,
) -> tuple[int, list[FuzzDivergence]]:
    """Replay one workload through all backends; returns (checked, divergences)."""
    source = workload.source_program
    oracle = workload.oracle_program
    compiler = ProgramCompiler()
    runners = {name: make_runner(name, compiler) for name in backends}
    reference = backends[0]

    generator = SequenceGenerator(programs=[source, oracle])
    sequences = itertools.chain(
        itertools.islice(generator.sequences(), max_sequences),
        generator.random_sequences(
            random_sequences, max_length=4, rng=random.Random(workload.seed)
        ),
    )

    divergences: list[FuzzDivergence] = []

    def report(kind: str, program: str, sequence, detail: str) -> None:
        divergences.append(
            FuzzDivergence(
                workload.name, workload.seed, kind, program,
                format_sequence(sequence), detail,
            )
        )

    checked = 0
    for sequence in sequences:
        checked += 1
        verdicts: dict[str, Optional[bool]] = {}
        outcomes: dict[str, dict[str, tuple]] = {"source": {}, "oracle": {}}
        for name, run in runners.items():
            outcomes["source"][name] = _outcome(run, source, sequence)
            outcomes["oracle"][name] = _outcome(run, oracle, sequence)

        # 1. Every backend must agree with the reference backend, per program.
        for label in ("source", "oracle"):
            expected_out, expected_err = outcomes[label][reference]
            for name in backends[1:]:
                actual_out, actual_err = outcomes[label][name]
                if expected_err != actual_err:
                    report(
                        "error", label, sequence,
                        f"{reference} -> {expected_err or 'no error'}, "
                        f"{name} -> {actual_err or 'no error'}",
                    )
                elif actual_out != expected_out:
                    report(
                        "outputs", label, sequence,
                        f"canonical outputs differ between {reference} and {name}",
                    )

        # 2. Source must agree with its known-good oracle, identically on
        #    every backend (the verdict, not just the reference's opinion).
        for name in backends:
            source_out, source_err = outcomes["source"][name]
            oracle_out, oracle_err = outcomes["oracle"][name]
            if source_err is not None or oracle_err is not None:
                verdicts[name] = source_err == oracle_err
            else:
                verdicts[name] = source_out == oracle_out
            if not verdicts[name]:
                report(
                    "verdict", "source-vs-oracle", sequence,
                    f"backend {name}: source and oracle diverge "
                    f"(source error {source_err}, oracle error {oracle_err})",
                )
        if len(set(verdicts.values())) > 1:
            report(
                "verdict", "source-vs-oracle", sequence,
                f"backends disagree on the equivalence verdict: {verdicts}",
            )
    return checked, divergences


def fuzz_corpus(
    seed: int,
    count: int,
    config: CorpusConfig = CorpusConfig(),
    *,
    backends: Sequence[str] = ALL_BACKENDS,
    max_sequences: int = 40,
    random_sequences: int = 10,
) -> FuzzReport:
    """Fuzz *count* workloads derived from master *seed*; fully deterministic."""
    report = FuzzReport(seed, count, tuple(backends))
    master = random.Random(seed)
    for _ in range(count):
        workload_seed = master.randrange(2**32)
        workload = generate_workload(workload_seed, config)
        report.workload_seeds.append(workload_seed)
        report.workloads.append(workload.name)
        checked, divergences = fuzz_workload(
            workload,
            backends=backends,
            max_sequences=max_sequences,
            random_sequences=random_sequences,
        )
        report.sequences_checked += checked
        report.divergences.extend(divergences)
    return report
