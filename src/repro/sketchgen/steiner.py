"""Enumeration of Steiner trees over the join graph.

Given a set of *terminal* tables (the tables that a join chain must cover),
the paper computes all Steiner trees — connected subgraphs spanning the
terminals — and converts them into candidate join chains.  Our enumeration
is bounded by the number of extra (non-terminal) tables allowed in a tree
and by the number of spanning trees produced per table subset; both bounds
are configurable and large enough for every benchmark in the suite.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.lang.ast import JoinChain
from repro.sketchgen.join_graph import JoinEdge, JoinGraph, tree_to_join_chain


@dataclass(frozen=True)
class SteinerLimits:
    """Bounds on the Steiner-tree enumeration."""

    max_extra_tables: int = 2
    max_trees_per_subset: int = 4
    max_chains: int = 64


def _spanning_trees(
    graph: JoinGraph, tables: Sequence[str], limit: int
) -> Iterator[list[JoinEdge]]:
    """Enumerate up to *limit* spanning trees of the subgraph induced by *tables*.

    The enumeration is a straightforward recursive search over edges with a
    union-find acyclicity check; subsets are small (a handful of tables), so
    no sophistication is needed.
    """
    table_list = list(dict.fromkeys(tables))
    if len(table_list) <= 1:
        yield []
        return
    edges = graph.edges_between(table_list)
    needed = len(table_list) - 1
    produced = 0
    seen: set[frozenset[JoinEdge]] = set()

    def find(parent: dict[str, str], node: str) -> str:
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    def recurse(start: int, chosen: list[JoinEdge], parent: dict[str, str]) -> Iterator[list[JoinEdge]]:
        nonlocal produced
        if produced >= limit:
            return
        if len(chosen) == needed:
            key = frozenset(chosen)
            if key not in seen:
                seen.add(key)
                produced += 1
                yield list(chosen)
            return
        # Not enough remaining edges to complete a tree.
        if len(chosen) + (len(edges) - start) < needed:
            return
        for index in range(start, len(edges)):
            edge = edges[index]
            root_left = find(parent, edge.left)
            root_right = find(parent, edge.right)
            if root_left == root_right:
                continue
            parent[root_left] = root_right
            chosen.append(edge)
            yield from recurse(index + 1, chosen, parent)
            chosen.pop()
            # Undo union by rebuilding parent map (subsets are tiny).
            parent.clear()
            parent.update({t: t for t in table_list})
            for e in chosen:
                parent[find(parent, e.left)] = find(parent, e.right)
            if produced >= limit:
                return

    initial_parent = {t: t for t in table_list}
    yield from recurse(0, [], initial_parent)


def steiner_chains(
    graph: JoinGraph,
    terminals: Iterable[str],
    limits: SteinerLimits | None = None,
) -> list[JoinChain]:
    """All candidate join chains covering *terminals*, smallest first.

    A candidate is a spanning tree of a connected induced subgraph whose node
    set contains the terminals and at most ``limits.max_extra_tables``
    additional tables.
    """
    limits = limits or SteinerLimits()
    terminal_list = sorted(set(terminals))
    if not terminal_list:
        return []
    for table in terminal_list:
        if table not in graph.schema:
            raise KeyError(f"unknown table {table!r} in target schema")

    others = [t for t in graph.nodes if t not in terminal_list]
    chains: list[JoinChain] = []
    seen: set = set()
    for extra_count in range(0, limits.max_extra_tables + 1):
        for extra in itertools.combinations(others, extra_count):
            subset = terminal_list + list(extra)
            if not graph.is_connected(subset):
                continue
            for tree in _spanning_trees(graph, subset, limits.max_trees_per_subset):
                chain = tree_to_join_chain(subset, tree)
                key = chain.canonical()
                if key in seen:
                    continue
                seen.add(key)
                chains.append(chain)
                if len(chains) >= limits.max_chains:
                    return chains
    return chains
