"""Sketch generation: join graphs, Steiner trees, join correspondences, sketches."""

from repro.sketchgen.generator import SketchGenerationError, SketchGenerator, SketchGeneratorConfig
from repro.sketchgen.join_corr import candidate_join_chains, is_valid_join_correspondence
from repro.sketchgen.join_graph import JoinEdge, JoinGraph, tree_to_join_chain
from repro.sketchgen.sketch_ast import (
    Alternative,
    AttrHole,
    ChoiceHole,
    FunctionSketch,
    Hole,
    HoleAllocator,
    JoinHole,
    ProgramSketch,
    QueryFunctionSketch,
    StatementSketch,
    TabListHole,
    UpdateFunctionSketch,
)
from repro.sketchgen.steiner import SteinerLimits, steiner_chains

__all__ = [
    "Alternative",
    "AttrHole",
    "ChoiceHole",
    "FunctionSketch",
    "Hole",
    "HoleAllocator",
    "JoinEdge",
    "JoinGraph",
    "JoinHole",
    "ProgramSketch",
    "QueryFunctionSketch",
    "SketchGenerationError",
    "SketchGenerator",
    "SketchGeneratorConfig",
    "StatementSketch",
    "SteinerLimits",
    "TabListHole",
    "UpdateFunctionSketch",
    "candidate_join_chains",
    "is_valid_join_correspondence",
    "steiner_chains",
    "tree_to_join_chain",
]
