"""Program sketches (Figure 6 of the paper).

A sketch is the source program with *holes*: unknown attributes, unknown join
chains, unknown delete table-lists, and unknown choices between alternative
statement sequences.  Every hole has a finite domain; the SAT encoding of
Section 4.4 introduces one indicator variable per (hole, domain element).

Rather than mirroring the whole AST with hole-bearing twins, a sketch keeps
the *source* function and records, per function, which holes drive the
rewriting: the instantiation code (``repro.completion.instantiate``) rebuilds
a concrete target-program function from the source function, the chosen join
chain(s), and the chosen attribute substitution.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence, Union

from repro.correspondence.value_corr import ValueCorrespondence
from repro.datamodel.schema import Attribute, Schema
from repro.lang.ast import (
    Delete,
    Insert,
    JoinChain,
    Program,
    Query,
    QueryFunction,
    Statement,
    Update,
    UpdateFunction,
)


#: An alternative of a statement choice hole: the sequence of join chains to
#: instantiate the source statement against (length > 1 means the statement is
#: duplicated, once per chain — the phase-II composition Ω1;Ω2).
Alternative = tuple[JoinChain, ...]


@dataclass
class Hole:
    """A sketch hole: an index, the owning function, and a finite domain."""

    index: int
    function: str
    domain: tuple
    description: str = ""

    def __post_init__(self) -> None:
        if not self.domain:
            raise ValueError(f"hole ??{self.index} in {self.function!r} has an empty domain")

    @property
    def size(self) -> int:
        return len(self.domain)

    def __str__(self) -> str:
        return f"??{self.index}[{self.description or 'hole'}; {self.size} choices]"


class AttrHole(Hole):
    """Domain: target attributes (images of one source attribute under Φ)."""


class JoinHole(Hole):
    """Domain: candidate join chains for a query function."""


class TabListHole(Hole):
    """Domain: candidate delete table-lists (non-empty subsets of joined tables)."""


class ChoiceHole(Hole):
    """Domain: alternative chain sequences for one source update statement."""


#: In attribute maps, a source attribute is rewritten either through a hole or
#: to a fixed target attribute (when its image under Φ is a singleton).
AttrRewrite = Union[AttrHole, Attribute]


@dataclass
class QueryFunctionSketch:
    """Sketch of a query function: one join hole plus attribute rewrites."""

    source: QueryFunction
    join_hole: JoinHole
    attr_map: dict[Attribute, AttrRewrite]
    subquery_holes: tuple[tuple[Query, JoinHole], ...] = ()

    @property
    def name(self) -> str:
        return self.source.name

    def holes(self) -> list[Hole]:
        result: list[Hole] = [self.join_hole]
        result.extend(h for h in self.attr_map.values() if isinstance(h, AttrHole))
        result.extend(hole for _, hole in self.subquery_holes)
        return result


@dataclass
class StatementSketch:
    """Sketch of one update statement."""

    source: Statement
    choice_hole: ChoiceHole
    attr_map: dict[Attribute, AttrRewrite]
    tablist_hole: Optional[TabListHole] = None
    subquery_holes: tuple[tuple[Query, JoinHole], ...] = ()

    def holes(self) -> list[Hole]:
        result: list[Hole] = [self.choice_hole]
        if self.tablist_hole is not None:
            result.append(self.tablist_hole)
        result.extend(h for h in self.attr_map.values() if isinstance(h, AttrHole))
        result.extend(hole for _, hole in self.subquery_holes)
        return result


@dataclass
class UpdateFunctionSketch:
    """Sketch of an update function: one statement sketch per source statement."""

    source: UpdateFunction
    statements: list[StatementSketch]

    @property
    def name(self) -> str:
        return self.source.name

    def holes(self) -> list[Hole]:
        result: list[Hole] = []
        for stmt in self.statements:
            result.extend(stmt.holes())
        return result


FunctionSketch = Union[QueryFunctionSketch, UpdateFunctionSketch]


@dataclass
class ProgramSketch:
    """The sketch of a whole program over the target schema."""

    source_program: Program
    target_schema: Schema
    correspondence: ValueCorrespondence
    functions: list[FunctionSketch]

    def holes(self) -> list[Hole]:
        """All holes of the sketch, deduplicated, in index order."""
        seen: dict[int, Hole] = {}
        for sketch in self.functions:
            for hole in sketch.holes():
                seen[hole.index] = hole
        return [seen[index] for index in sorted(seen)]

    def holes_by_function(self) -> dict[str, list[Hole]]:
        result: dict[str, list[Hole]] = {}
        for sketch in self.functions:
            holes = sketch.holes()
            deduped: dict[int, Hole] = {h.index: h for h in holes}
            result[sketch.name] = [deduped[i] for i in sorted(deduped)]
        return result

    def function_sketch(self, name: str) -> FunctionSketch:
        for sketch in self.functions:
            if sketch.name == name:
                return sketch
        raise KeyError(f"sketch has no function {name!r}")

    def search_space_size(self) -> int:
        """The number of sketch completions (product of hole domain sizes)."""
        size = 1
        for hole in self.holes():
            size *= hole.size
        return size

    def num_holes(self) -> int:
        return len(self.holes())

    def describe(self) -> str:
        lines = [
            f"sketch over target schema {self.target_schema.name!r}: "
            f"{len(self.functions)} functions, {self.num_holes()} holes, "
            f"{self.search_space_size()} completions"
        ]
        for name, holes in self.holes_by_function().items():
            if holes:
                rendered = ", ".join(str(h) for h in holes)
                lines.append(f"  {name}: {rendered}")
        return "\n".join(lines)


class HoleAllocator:
    """Allocates globally unique hole indices during sketch generation."""

    def __init__(self) -> None:
        self._next = 1

    def attr_hole(self, function: str, domain: Iterable[Attribute], description: str) -> AttrHole:
        return self._make(AttrHole, function, tuple(domain), description)

    def join_hole(self, function: str, domain: Iterable[JoinChain], description: str) -> JoinHole:
        return self._make(JoinHole, function, tuple(domain), description)

    def tablist_hole(
        self, function: str, domain: Iterable[tuple[str, ...]], description: str
    ) -> TabListHole:
        return self._make(TabListHole, function, tuple(domain), description)

    def choice_hole(
        self, function: str, domain: Iterable[Alternative], description: str
    ) -> ChoiceHole:
        return self._make(ChoiceHole, function, tuple(domain), description)

    def _make(self, cls, function: str, domain: tuple, description: str) -> Hole:
        hole = cls(self._next, function, domain, description)
        self._next += 1
        return hole
