"""Sketch generation (Section 4.3, Figures 8–10 of the paper).

Phase I rewrites every source statement against one candidate target join
chain, introducing holes for attributes with multiple images under the value
correspondence and for delete table-lists.  Phase II combines the per-chain
rewrites: query statements become a plain choice over chains, while update
statements additionally admit sequential compositions of the per-chain
rewrites (the ``Ω1 ? Ω2 ? (Ω1;Ω2)`` rule).  Compositions whose chains are
redundant (one chain's tables contain another's) are pruned by default,
matching the shape of the running example in the paper.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.correspondence.value_corr import ValueCorrespondence
from repro.datamodel.schema import Attribute, Schema
from repro.lang.ast import (
    Delete,
    InQuery,
    Insert,
    JoinChain,
    Program,
    Query,
    QueryFunction,
    Statement,
    Update,
    UpdateFunction,
)
from repro.lang.visitors import (
    attributes_of_predicate,
    attributes_of_query,
    join_chain_of_query,
)
from repro.sketchgen.join_corr import candidate_join_chains
from repro.sketchgen.join_graph import JoinGraph
from repro.sketchgen.sketch_ast import (
    Alternative,
    AttrHole,
    AttrRewrite,
    ChoiceHole,
    FunctionSketch,
    HoleAllocator,
    JoinHole,
    ProgramSketch,
    QueryFunctionSketch,
    StatementSketch,
    TabListHole,
    UpdateFunctionSketch,
)
from repro.sketchgen.steiner import SteinerLimits


class SketchGenerationError(Exception):
    """Raised when no sketch exists for the given value correspondence.

    The synthesizer treats this as "the conjectured value correspondence is
    wrong" and moves on to the next one.
    """


@dataclass
class SketchGeneratorConfig:
    """Tunable bounds of sketch generation."""

    steiner_limits: SteinerLimits = field(default_factory=SteinerLimits)
    prune_subsumed_compositions: bool = True
    max_composition_length: int = 2
    max_alternatives: int = 16
    max_tablist_tables: int = 8


def _collect_subqueries(predicate) -> list[Query]:
    """All ``IN`` sub-queries appearing in a predicate."""
    from repro.lang.ast import And, Not, Or

    if isinstance(predicate, InQuery):
        return [predicate.query]
    if isinstance(predicate, (And, Or)):
        return _collect_subqueries(predicate.left) + _collect_subqueries(predicate.right)
    if isinstance(predicate, Not):
        return _collect_subqueries(predicate.operand)
    return []


def _predicates_of_query(query: Query) -> list:
    from repro.lang.ast import Projection, Selection

    preds = []
    node = query
    while isinstance(node, (Projection, Selection)):
        if isinstance(node, Selection):
            preds.append(node.predicate)
        node = node.source
    return preds


class SketchGenerator:
    """Generates a :class:`ProgramSketch` from a value correspondence."""

    def __init__(
        self,
        source_program: Program,
        target_schema: Schema,
        config: SketchGeneratorConfig | None = None,
    ):
        self.source_program = source_program
        self.target_schema = target_schema
        self.config = config or SketchGeneratorConfig()
        self.graph = JoinGraph(target_schema)

    # ------------------------------------------------------------------ entry
    def generate(self, correspondence: ValueCorrespondence) -> ProgramSketch:
        allocator = HoleAllocator()
        functions: list[FunctionSketch] = []
        for func in self.source_program:
            if isinstance(func, QueryFunction):
                functions.append(self._query_sketch(func, correspondence, allocator))
            else:
                functions.append(self._update_sketch(func, correspondence, allocator))
        return ProgramSketch(self.source_program, self.target_schema, correspondence, functions)

    # --------------------------------------------------------------- rewrites
    def _rewrite_attr(
        self,
        function: str,
        attr: Attribute,
        correspondence: ValueCorrespondence,
        allocator: HoleAllocator,
        attr_map: dict[Attribute, AttrRewrite],
        *,
        required: bool,
    ) -> Optional[AttrRewrite]:
        """Record the rewrite of one source attribute (the Attr rule).

        Returns ``None`` for unmapped optional attributes (the value is simply
        dropped); raises for unmapped required attributes.
        """
        if attr in attr_map:
            return attr_map[attr]
        image = correspondence.image(attr)
        if not image:
            if required:
                raise SketchGenerationError(
                    f"attribute {attr} used by {function!r} has no image under the value correspondence"
                )
            return None
        if len(image) == 1:
            rewrite: AttrRewrite = next(iter(image))
        else:
            rewrite = allocator.attr_hole(function, sorted(image), f"attr {attr}")
        attr_map[attr] = rewrite
        return rewrite

    def _chains_for(
        self, correspondence: ValueCorrespondence, attrs: Iterable[Attribute], context: str
    ) -> list[JoinChain]:
        chains = candidate_join_chains(
            correspondence, self.graph, attrs, self.config.steiner_limits
        )
        if not chains:
            raise SketchGenerationError(
                f"no candidate join chain covers the attributes used by {context}"
            )
        return chains

    def _subquery_holes(
        self,
        function: str,
        predicates: Sequence,
        correspondence: ValueCorrespondence,
        allocator: HoleAllocator,
        attr_map: dict[Attribute, AttrRewrite],
    ) -> tuple[tuple[Query, JoinHole], ...]:
        holes: list[tuple[Query, JoinHole]] = []
        for predicate in predicates:
            for subquery in _collect_subqueries(predicate):
                sub_attrs = attributes_of_query(subquery)
                for attr in sub_attrs:
                    self._rewrite_attr(
                        function, attr, correspondence, allocator, attr_map, required=True
                    )
                chains = self._chains_for(
                    correspondence, sub_attrs, f"sub-query of {function!r}"
                )
                holes.append(
                    (subquery, allocator.join_hole(function, chains, "sub-query join chain"))
                )
        return tuple(holes)

    # ------------------------------------------------------------------ query
    def _query_sketch(
        self,
        func: QueryFunction,
        correspondence: ValueCorrespondence,
        allocator: HoleAllocator,
    ) -> QueryFunctionSketch:
        from repro.lang.ast import Projection

        attr_map: dict[Attribute, AttrRewrite] = {}
        predicates = _predicates_of_query(func.query)

        projection_attrs: list[Attribute] = []
        if isinstance(func.query, Projection):
            projection_attrs = list(func.query.attributes)
        predicate_attrs = set()
        for predicate in predicates:
            predicate_attrs |= attributes_of_predicate(predicate)
        # Attributes inside sub-queries are handled separately.
        subquery_attr_sets = set()
        for predicate in predicates:
            for subquery in _collect_subqueries(predicate):
                subquery_attr_sets |= attributes_of_query(subquery)
        predicate_attrs -= subquery_attr_sets

        required_attrs = list(dict.fromkeys(projection_attrs)) + sorted(predicate_attrs)
        for attr in required_attrs:
            self._rewrite_attr(
                func.name, attr, correspondence, allocator, attr_map, required=True
            )

        chains = self._chains_for(correspondence, required_attrs, f"query {func.name!r}")
        join_hole = allocator.join_hole(func.name, chains, "query join chain")
        subquery_holes = self._subquery_holes(
            func.name, predicates, correspondence, allocator, attr_map
        )
        return QueryFunctionSketch(func, join_hole, attr_map, subquery_holes)

    # ----------------------------------------------------------------- update
    def _compositions(self, chains: Sequence[JoinChain]) -> list[Alternative]:
        """Phase II for update statements: chains plus their compositions."""
        alternatives: list[Alternative] = [(chain,) for chain in chains]
        if len(chains) > 1 and self.config.max_composition_length >= 2:
            for length in range(2, self.config.max_composition_length + 1):
                for combo in itertools.combinations(chains, length):
                    if self.config.prune_subsumed_compositions and self._subsumed(combo):
                        continue
                    alternatives.append(tuple(combo))
                    if len(alternatives) >= self.config.max_alternatives:
                        return alternatives[: self.config.max_alternatives]
        return alternatives[: self.config.max_alternatives]

    @staticmethod
    def _subsumed(chains: Sequence[JoinChain]) -> bool:
        """Whether some chain's tables contain another's (redundant composition)."""
        for left, right in itertools.combinations(chains, 2):
            left_tables, right_tables = left.table_set(), right.table_set()
            if left_tables <= right_tables or right_tables <= left_tables:
                return True
        return False

    def _tablist_domain(self, chains: Sequence[JoinChain]) -> list[tuple[str, ...]]:
        """Non-empty table subsets deletable through at least one candidate chain.

        The paper's rule is ``TabLists(J')`` = the powerset of the tables of
        the chosen chain; since the chain itself is a hole, the domain is the
        union of the per-chain powersets (each chain is small, so this stays
        bounded even when the chains jointly span many tables).
        """
        domain: list[tuple[str, ...]] = []
        seen: set[tuple[str, ...]] = set()
        for chain in chains:
            tables = sorted(chain.tables)
            if len(tables) > self.config.max_tablist_tables:
                raise SketchGenerationError(
                    f"delete table-list domain too large ({len(tables)} tables in one chain)"
                )
            for size in range(1, len(tables) + 1):
                for subset in itertools.combinations(tables, size):
                    if subset not in seen:
                        seen.add(subset)
                        domain.append(subset)
        return domain

    def _statement_sketch(
        self,
        func: UpdateFunction,
        stmt: Statement,
        correspondence: ValueCorrespondence,
        allocator: HoleAllocator,
        attr_map: dict[Attribute, AttrRewrite],
    ) -> StatementSketch:
        name = func.name
        if isinstance(stmt, Insert):
            required: list[Attribute] = []
            for attr, _ in stmt.values:
                rewrite = self._rewrite_attr(
                    name, attr, correspondence, allocator, attr_map, required=False
                )
                if rewrite is not None:
                    required.append(attr)
            if not required:
                raise SketchGenerationError(
                    f"insert statement in {name!r} has no attribute mapped by the value correspondence"
                )
            chains = self._chains_for(correspondence, required, f"insert in {name!r}")
            choice = allocator.choice_hole(name, self._compositions(chains), "insert target")
            return StatementSketch(stmt, choice, attr_map)

        if isinstance(stmt, Delete):
            required = set()
            for table in stmt.tables:
                required |= set(self.source_program.schema.attributes_of(table))
            predicate_attrs = attributes_of_predicate(stmt.predicate)
            for attr in sorted(predicate_attrs):
                self._rewrite_attr(name, attr, correspondence, allocator, attr_map, required=True)
            required = {a for a in required if correspondence.is_mapped(a)} | predicate_attrs
            if not required:
                raise SketchGenerationError(
                    f"delete statement in {name!r} has no attribute mapped by the value correspondence"
                )
            chains = self._chains_for(correspondence, sorted(required), f"delete in {name!r}")
            alternatives = self._compositions(chains)
            tablist = allocator.tablist_hole(
                name, self._tablist_domain(chains), "delete table list"
            )
            choice = allocator.choice_hole(name, alternatives, "delete join chain")
            subqueries = self._subquery_holes(
                name, [stmt.predicate], correspondence, allocator, attr_map
            )
            return StatementSketch(stmt, choice, attr_map, tablist, subqueries)

        if isinstance(stmt, Update):
            self._rewrite_attr(
                name, stmt.attribute, correspondence, allocator, attr_map, required=True
            )
            predicate_attrs = attributes_of_predicate(stmt.predicate)
            for attr in sorted(predicate_attrs):
                self._rewrite_attr(name, attr, correspondence, allocator, attr_map, required=True)
            required = set(predicate_attrs) | {stmt.attribute}
            chains = self._chains_for(correspondence, sorted(required), f"update in {name!r}")
            choice = allocator.choice_hole(name, self._compositions(chains), "update join chain")
            subqueries = self._subquery_holes(
                name, [stmt.predicate], correspondence, allocator, attr_map
            )
            return StatementSketch(stmt, choice, attr_map, None, subqueries)

        raise TypeError(f"unknown statement node {stmt!r}")

    def _update_sketch(
        self,
        func: UpdateFunction,
        correspondence: ValueCorrespondence,
        allocator: HoleAllocator,
    ) -> UpdateFunctionSketch:
        attr_map: dict[Attribute, AttrRewrite] = {}
        statements = [
            self._statement_sketch(func, stmt, correspondence, allocator, attr_map)
            for stmt in func.statements
        ]
        return UpdateFunctionSketch(func, statements)
