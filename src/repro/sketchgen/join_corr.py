"""Join correspondences: mapping source join chains to target join chains.

Given a value correspondence Φ and the set of source attributes ``A`` that a
statement uses, a target join chain ``J'`` is a valid correspondence if every
attribute of ``A`` has an image under Φ inside ``J'`` (Figure 7 of the
paper).  Instead of enumerating and checking all chains, we follow the
paper's implementation and construct the candidates directly: the tables
containing the images of ``A`` are the terminals of a Steiner-tree search
over the target join graph.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Sequence

from repro.correspondence.value_corr import ValueCorrespondence
from repro.datamodel.schema import Attribute
from repro.lang.ast import JoinChain
from repro.sketchgen.join_graph import JoinGraph
from repro.sketchgen.steiner import SteinerLimits, steiner_chains

#: Safety bound on the number of image-choice combinations explored when a
#: source attribute maps to several target attributes.
_MAX_IMAGE_COMBINATIONS = 512


def is_valid_join_correspondence(
    correspondence: ValueCorrespondence,
    attrs: Iterable[Attribute],
    chain: JoinChain,
) -> bool:
    """The Attrs/JoinChain judgement of Figure 7: Φ ⊢_A J ~ J'."""
    chain_tables = set(chain.tables)
    for attr in attrs:
        image = correspondence.image(attr)
        if not image:
            return False
        if not any(target.table in chain_tables for target in image):
            return False
    return True


def candidate_join_chains(
    correspondence: ValueCorrespondence,
    graph: JoinGraph,
    attrs: Iterable[Attribute],
    limits: SteinerLimits | None = None,
) -> list[JoinChain]:
    """All candidate target join chains for a statement using *attrs*.

    Only attributes with a non-empty image participate (unmapped attributes
    are handled by the caller); the result is sorted by the number of joined
    tables so that simpler chains are explored first.
    """
    limits = limits or SteinerLimits()
    mapped = [attr for attr in attrs if correspondence.is_mapped(attr)]
    if not mapped:
        return []

    image_lists = [sorted(correspondence.image(attr)) for attr in mapped]
    combinations = 1
    for image in image_lists:
        combinations *= len(image)

    terminal_sets: set[frozenset[str]] = set()
    if combinations <= _MAX_IMAGE_COMBINATIONS:
        for combo in itertools.product(*image_lists):
            terminal_sets.add(frozenset(attr.table for attr in combo))
    else:
        # Fall back to the most-similar image per attribute (first in sorted
        # order) to avoid a combinatorial blow-up; completeness is preserved
        # through value-correspondence backtracking.
        terminal_sets.add(frozenset(images[0].table for images in image_lists))

    chains: list[JoinChain] = []
    seen: set = set()
    for terminals in sorted(terminal_sets, key=lambda s: (len(s), sorted(s))):
        for chain in steiner_chains(graph, terminals, limits):
            key = chain.canonical()
            if key in seen:
                continue
            seen.add(key)
            chains.append(chain)

    chains.sort(key=lambda c: (len(c.tables), str(c)))
    if len(chains) > limits.max_chains:
        chains = chains[: limits.max_chains]
    # Sanity: every produced chain must indeed be a valid join correspondence.
    return [chain for chain in chains if is_valid_join_correspondence(correspondence, mapped, chain)]
