"""The join graph of a schema.

Nodes are tables; an edge connects two tables that can be equi-joined, and
is labelled with the attribute pair(s) on which they join.  The join graph
is the search space for the Steiner-tree enumeration that produces join
correspondences (Section 5 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.datamodel.schema import Attribute, Schema
from repro.lang.ast import JoinChain


@dataclass(frozen=True)
class JoinEdge:
    """An undirected join edge between two tables."""

    left: str
    right: str
    condition: tuple[Attribute, Attribute]

    def other(self, table: str) -> str:
        if table == self.left:
            return self.right
        if table == self.right:
            return self.left
        raise KeyError(f"table {table!r} is not an endpoint of {self}")

    def endpoints(self) -> frozenset[str]:
        return frozenset((self.left, self.right))

    def __str__(self) -> str:
        return f"{self.left} -- {self.right} ({self.condition[0]} = {self.condition[1]})"


class JoinGraph:
    """Joinability graph of a schema."""

    def __init__(self, schema: Schema):
        self.schema = schema
        self._edges: list[JoinEdge] = []
        self._adjacency: dict[str, list[JoinEdge]] = {name: [] for name in schema.table_names}
        for left, right in schema.joinable_pairs():
            self.add_edge(left, right)

    # ------------------------------------------------------------------ build
    def add_edge(self, left: Attribute, right: Attribute) -> JoinEdge:
        edge = JoinEdge(left.table, right.table, (left, right))
        self._edges.append(edge)
        self._adjacency[left.table].append(edge)
        self._adjacency[right.table].append(edge)
        return edge

    # ----------------------------------------------------------------- access
    @property
    def nodes(self) -> list[str]:
        return self.schema.table_names

    @property
    def edges(self) -> list[JoinEdge]:
        return list(self._edges)

    def edges_of(self, table: str) -> list[JoinEdge]:
        return list(self._adjacency.get(table, ()))

    def edges_between(self, tables: Iterable[str]) -> list[JoinEdge]:
        """Edges of the subgraph induced by *tables*."""
        table_set = set(tables)
        return [
            edge
            for edge in self._edges
            if edge.left in table_set and edge.right in table_set
        ]

    def neighbors(self, table: str) -> set[str]:
        return {edge.other(table) for edge in self._adjacency.get(table, ())}

    # ----------------------------------------------------------- connectivity
    def is_connected(self, tables: Iterable[str]) -> bool:
        """Whether the subgraph induced by *tables* is connected."""
        table_list = list(dict.fromkeys(tables))
        if not table_list:
            return True
        table_set = set(table_list)
        seen = {table_list[0]}
        frontier = [table_list[0]]
        while frontier:
            current = frontier.pop()
            for edge in self._adjacency.get(current, ()):
                neighbor = edge.other(current)
                if neighbor in table_set and neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return seen == table_set

    def connected_component(self, start: str) -> set[str]:
        seen = {start}
        frontier = [start]
        while frontier:
            current = frontier.pop()
            for neighbor in self.neighbors(current):
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return seen

    def __repr__(self) -> str:
        return f"JoinGraph(tables={len(self.nodes)}, edges={len(self._edges)})"


def tree_to_join_chain(tables: Iterable[str], edges: Iterable[JoinEdge]) -> JoinChain:
    """Convert a spanning tree (tables + tree edges) into a join chain.

    Tables are ordered by a breadth-first traversal from the lexicographically
    smallest table so that the resulting chain is deterministic; conditions
    are the tree edges.
    """
    table_list = sorted(set(tables))
    edge_list = list(edges)
    if len(table_list) == 1:
        return JoinChain.of(table_list[0])
    adjacency: dict[str, list[JoinEdge]] = {t: [] for t in table_list}
    for edge in edge_list:
        adjacency[edge.left].append(edge)
        adjacency[edge.right].append(edge)
    order: list[str] = []
    seen: set[str] = set()
    frontier = [table_list[0]]
    while frontier:
        current = frontier.pop(0)
        if current in seen:
            continue
        seen.add(current)
        order.append(current)
        for edge in sorted(adjacency[current], key=str):
            neighbor = edge.other(current)
            if neighbor not in seen:
                frontier.append(neighbor)
    conditions = tuple(edge.condition for edge in edge_list)
    return JoinChain(tuple(order), conditions)
