"""Generation of CRUD-style database programs for the real-world benchmarks.

The ten real-world benchmarks of the paper are extracted from Ruby-on-Rails
applications; their programs are dominated by per-model CRUD transactions
(insert a row, look up rows by id or by a column, update a column, delete
rows) plus a handful of join queries along foreign keys.  This module
generates such programs deterministically from an entity list, so that each
benchmark's function count can be scaled (the paper-sized programs have up to
263 functions; the default registry uses laptop-sized versions — see
EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.datamodel.schema import Schema
from repro.datamodel.types import DataType
from repro.lang.ast import Program
from repro.lang.builder import (
    ProgramBuilder,
    delete,
    eq,
    insert,
    join,
    select,
    update,
)


@dataclass
class EntityDef:
    """One table of the application model."""

    table: str
    key: str
    columns: dict[str, DataType]

    def non_key_columns(self) -> list[str]:
        return [c for c in self.columns if c != self.key]


@dataclass
class JoinQuerySpec:
    """A query joining two entities along a foreign key."""

    left: str
    right: str
    left_column: str
    right_column: str
    key_column: str  # filter column (on the left entity)
    project: tuple[str, ...]  # fully qualified attributes to project


def _camel(name: str) -> str:
    return "".join(part.capitalize() for part in name.split("_"))


def _param_type(dtype: DataType) -> str:
    return {
        DataType.INT: "int",
        DataType.STRING: "str",
        DataType.BINARY: "binary",
        DataType.BOOL: "bool",
    }[dtype]


class CrudProgramGenerator:
    """Deterministically generates a CRUD program over a source schema."""

    def __init__(
        self,
        name: str,
        schema: Schema,
        entities: Sequence[EntityDef],
        join_queries: Sequence[JoinQuerySpec] = (),
    ):
        self.name = name
        self.schema = schema
        self.entities = list(entities)
        self.join_queries = list(join_queries)

    # ----------------------------------------------------------- per entity ops
    def _add_function(self, pb: ProgramBuilder, entity: EntityDef) -> None:
        params = [(col, _param_type(dtype)) for col, dtype in entity.columns.items()]
        values = {f"{entity.table}.{col}": f"${col}" for col in entity.columns}
        pb.update(f"add{_camel(entity.table)}", params, insert(entity.table, values))

    def _get_function(self, pb: ProgramBuilder, entity: EntityDef) -> None:
        cols = entity.non_key_columns()[:3] or [entity.key]
        pb.query(
            f"get{_camel(entity.table)}",
            [(entity.key, _param_type(entity.columns[entity.key]))],
            select(
                [f"{entity.table}.{c}" for c in cols],
                entity.table,
                eq(f"{entity.table}.{entity.key}", f"${entity.key}"),
            ),
        )

    def _delete_function(self, pb: ProgramBuilder, entity: EntityDef) -> None:
        pb.update(
            f"delete{_camel(entity.table)}",
            [(entity.key, _param_type(entity.columns[entity.key]))],
            delete(
                entity.table, entity.table, eq(f"{entity.table}.{entity.key}", f"${entity.key}")
            ),
        )

    def _get_column_function(self, pb: ProgramBuilder, entity: EntityDef, column: str) -> None:
        pb.query(
            f"get{_camel(entity.table)}{_camel(column)}",
            [(entity.key, _param_type(entity.columns[entity.key]))],
            select(
                [f"{entity.table}.{column}"],
                entity.table,
                eq(f"{entity.table}.{entity.key}", f"${entity.key}"),
            ),
        )

    def _update_column_function(self, pb: ProgramBuilder, entity: EntityDef, column: str) -> None:
        pb.update(
            f"update{_camel(entity.table)}{_camel(column)}",
            [
                (entity.key, _param_type(entity.columns[entity.key])),
                (column, _param_type(entity.columns[column])),
            ],
            update(
                entity.table,
                eq(f"{entity.table}.{entity.key}", f"${entity.key}"),
                f"{entity.table}.{column}",
                f"${column}",
            ),
        )

    def _find_by_function(self, pb: ProgramBuilder, entity: EntityDef, column: str) -> None:
        pb.query(
            f"find{_camel(entity.table)}By{_camel(column)}",
            [(column, _param_type(entity.columns[column]))],
            select(
                [f"{entity.table}.{entity.key}"],
                entity.table,
                eq(f"{entity.table}.{column}", f"${column}"),
            ),
        )

    def _delete_by_function(self, pb: ProgramBuilder, entity: EntityDef, column: str) -> None:
        pb.update(
            f"delete{_camel(entity.table)}By{_camel(column)}",
            [(column, _param_type(entity.columns[column]))],
            delete(entity.table, entity.table, eq(f"{entity.table}.{column}", f"${column}")),
        )

    def _join_query_function(self, pb: ProgramBuilder, spec: JoinQuerySpec) -> None:
        chain = join(
            [spec.left, spec.right],
            on=[(f"{spec.left}.{spec.left_column}", f"{spec.right}.{spec.right_column}")],
        )
        left_entity = next(e for e in self.entities if e.table == spec.left)
        pb.query(
            f"get{_camel(spec.left)}With{_camel(spec.right)}",
            [(spec.key_column, _param_type(left_entity.columns[spec.key_column]))],
            select(list(spec.project), chain, eq(f"{spec.left}.{spec.key_column}", f"${spec.key_column}")),
        )

    # --------------------------------------------------------------------- build
    def generate(self, num_functions: int) -> Program:
        """Generate a program with (approximately, capped below) *num_functions*."""
        pb = ProgramBuilder(self.name, self.schema)
        budget = num_functions

        # Wave 1: add / get / delete for every entity (the minimum useful program).
        waves = [
            lambda e: self._add_function(pb, e),
            lambda e: self._get_function(pb, e),
            lambda e: self._delete_function(pb, e),
        ]
        produced = 0
        for wave in waves:
            for entity in self.entities:
                if produced >= budget:
                    break
                wave(entity)
                produced += 1

        # Wave 2: join queries along foreign keys.
        for spec in self.join_queries:
            if produced >= budget:
                break
            self._join_query_function(pb, spec)
            produced += 1

        # Wave 3: per-column getters / updaters / finders, round-robin over
        # (operation, column) pairs so that no function name is generated twice.
        column_waves = [
            ("get", self._get_column_function),
            ("update", self._update_column_function),
            ("findBy", self._find_by_function),
            ("deleteBy", self._delete_by_function),
        ]
        emitted: set[tuple[str, str, str]] = set()
        depth = 0
        max_depth = len(column_waves) * max(
            (len(e.non_key_columns()) for e in self.entities), default=1
        )
        while produced < budget and depth < max_depth:
            wave_name, wave = column_waves[depth % len(column_waves)]
            column_rank = depth // len(column_waves)
            for entity in self.entities:
                if produced >= budget:
                    break
                non_key = entity.non_key_columns()
                if column_rank >= len(non_key):
                    continue
                column = non_key[column_rank]
                key = (wave_name, entity.table, column)
                if key in emitted:
                    continue
                emitted.add(key)
                wave(pb, entity, column)
                produced += 1
            depth += 1

        return pb.build()
