"""Benchmark registry.

Each benchmark packages a source program, a target schema, and metadata
matching one row of Table 1 of the paper.  The original Mediator benchmark
programs are not publicly included in the paper, so the suite reconstructs
them: the ten textbook benchmarks are built directly from their descriptions
and the ten real-world benchmarks are generated with schema sizes matching
Table 1 and CRUD-style function suites (see ``repro.workloads.realworld``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.datamodel.schema import Schema
from repro.lang.ast import Program


@dataclass
class Benchmark:
    """One schema-refactoring scenario."""

    name: str
    description: str
    category: str  # "textbook" or "real-world"
    source_program: Program
    target_schema: Schema
    #: The row of Table 1 in the paper this benchmark reconstructs (for the
    #: paper-vs-measured comparison in EXPERIMENTS.md); ``None`` for extras.
    paper_row: Optional[dict] = None

    @property
    def num_functions(self) -> int:
        return self.source_program.num_functions()

    @property
    def source_schema(self) -> Schema:
        return self.source_program.schema

    def stats(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "functions": self.num_functions,
            "source_tables": self.source_schema.num_tables(),
            "source_attrs": self.source_schema.num_attributes(),
            "target_tables": self.target_schema.num_tables(),
            "target_attrs": self.target_schema.num_attributes(),
        }


class BenchmarkRegistry:
    """Named collection of benchmarks, populated lazily."""

    def __init__(self) -> None:
        self._factories: dict[str, Callable[[], Benchmark]] = {}
        self._cache: dict[str, Benchmark] = {}
        self._order: list[str] = []

    def register(self, name: str, factory: Callable[[], Benchmark]) -> None:
        if name in self._factories:
            raise ValueError(f"benchmark {name!r} already registered")
        self._factories[name] = factory
        self._order.append(name)

    def names(self) -> list[str]:
        return list(self._order)

    def get(self, name: str) -> Benchmark:
        if name not in self._factories:
            raise KeyError(f"unknown benchmark {name!r}; known: {self._order}")
        if name not in self._cache:
            self._cache[name] = self._factories[name]()
        return self._cache[name]

    def all(self) -> list[Benchmark]:
        return [self.get(name) for name in self._order]

    def by_category(self, category: str) -> list[Benchmark]:
        return [b for b in self.all() if b.category == category]

    def __iter__(self):
        return iter(self.all())

    def __len__(self) -> int:
        return len(self._order)


#: The global registry holding the 20 reconstructed paper benchmarks.
REGISTRY = BenchmarkRegistry()


def register(name: str):
    """Decorator registering a zero-argument benchmark factory."""

    def wrap(factory: Callable[[], Benchmark]) -> Callable[[], Benchmark]:
        REGISTRY.register(name, factory)
        return factory

    return wrap


def load_all() -> BenchmarkRegistry:
    """Import the benchmark modules so that every factory is registered."""
    from repro.workloads import realworld, textbook  # noqa: F401  (side-effect imports)

    return REGISTRY


def get_benchmark(name: str) -> Benchmark:
    return load_all().get(name)


def benchmark_names() -> list[str]:
    return load_all().names()
