"""The ten textbook schema-refactoring benchmarks (Table 1, upper half).

The original benchmark programs come from Oracle's schema evolution guides
and from Ambler & Sadalage's *Refactoring Databases* and are not included in
the paper, so each benchmark here is reconstructed from its one-line
description and from the table/attribute counts reported in Table 1.  The
refactoring *kind* (merge, split, move, rename, associative table, key
replacement, added attributes, denormalization) is preserved exactly; the
concrete domain (employees, courses, customers) is ours.
"""

from __future__ import annotations

from repro.datamodel import DataType as T
from repro.datamodel import make_schema
from repro.lang.builder import (
    ProgramBuilder,
    conj,
    delete,
    eq,
    insert,
    join,
    select,
    update,
)
from repro.workloads.registry import Benchmark, register


# --------------------------------------------------------------------------- Oracle-1
@register("Oracle-1")
def oracle_1() -> Benchmark:
    """Merge two contact-like tables into a single table."""
    source = make_schema(
        "oracle1_src",
        {
            "Customer": {"CustId": T.INT, "CName": T.STRING, "CPhone": T.STRING},
            "Supplier": {
                "SuppId": T.INT,
                "SName": T.STRING,
                "SPhone": T.STRING,
                "SCity": T.STRING,
                "SZip": T.INT,
            },
        },
    )
    target = make_schema(
        "oracle1_tgt",
        {
            "Contact": {
                "CustId": T.INT,
                "SuppId": T.INT,
                "Name": T.STRING,
                "Phone": T.STRING,
                "City": T.STRING,
                "Zip": T.INT,
            },
        },
    )
    pb = ProgramBuilder("oracle1", source)
    pb.update(
        "addCustomer",
        [("id", "int"), ("name", "str"), ("phone", "str")],
        insert("Customer", {"Customer.CustId": "$id", "Customer.CName": "$name", "Customer.CPhone": "$phone"}),
    )
    pb.query(
        "getCustomerPhone",
        [("id", "int")],
        select(["Customer.CPhone"], "Customer", eq("Customer.CustId", "$id")),
    )
    pb.update(
        "addSupplier",
        [("id", "int"), ("name", "str"), ("phone", "str"), ("city", "str"), ("zip", "int")],
        insert(
            "Supplier",
            {
                "Supplier.SuppId": "$id",
                "Supplier.SName": "$name",
                "Supplier.SPhone": "$phone",
                "Supplier.SCity": "$city",
                "Supplier.SZip": "$zip",
            },
        ),
    )
    pb.query(
        "getSupplierInfo",
        [("id", "int")],
        select(
            ["Supplier.SName", "Supplier.SPhone", "Supplier.SCity"],
            "Supplier",
            eq("Supplier.SuppId", "$id"),
        ),
    )
    return Benchmark(
        name="Oracle-1",
        description="Merge tables",
        category="textbook",
        source_program=pb.build(),
        target_schema=target,
        paper_row={"funcs": 4, "value_corr": 1, "iters": 1, "synth_time": 0.3, "total_time": 2.7},
    )


# --------------------------------------------------------------------------- Oracle-2
@register("Oracle-2")
def oracle_2() -> Benchmark:
    """Split a store schema into normalized lookup tables."""
    source = make_schema(
        "oracle2_src",
        {
            "Customer": {
                "CustId": T.INT,
                "CName": T.STRING,
                "Street": T.STRING,
                "City": T.STRING,
                "State": T.STRING,
                "Zip": T.INT,
                "Phone": T.STRING,
            },
            "Product": {
                "ProdId": T.INT,
                "PName": T.STRING,
                "Price": T.INT,
                "Category": T.STRING,
                "Supplier": T.STRING,
            },
            "Orders": {
                "OrderId": T.INT,
                "CustId": T.INT,
                "ProdId": T.INT,
                "Quantity": T.INT,
                "OrderDate": T.STRING,
            },
        },
    )
    target = make_schema(
        "oracle2_tgt",
        {
            "Customer": {"CustId": T.INT, "CName": T.STRING, "Phone": T.STRING, "AddrId": T.INT},
            "Address": {
                "AddrId": T.INT,
                "Street": T.STRING,
                "City": T.STRING,
                "State": T.STRING,
                "Zip": T.INT,
                "Country": T.STRING,
            },
            "Product": {
                "ProdId": T.INT,
                "PName": T.STRING,
                "CatId": T.INT,
                "SuppId": T.INT,
                "PriceId": T.INT,
            },
            "Category": {"CatId": T.INT, "Category": T.STRING},
            "Supplier": {"SuppId": T.INT, "Supplier": T.STRING},
            "ProductPrice": {"PriceId": T.INT, "Price": T.INT},
            "Orders": {
                "OrderId": T.INT,
                "CustId": T.INT,
                "ProdId": T.INT,
                "Quantity": T.INT,
                "OrderDate": T.STRING,
            },
        },
        foreign_keys=[
            ("Customer.AddrId", "Address.AddrId"),
            ("Product.CatId", "Category.CatId"),
            ("Product.SuppId", "Supplier.SuppId"),
            ("Product.PriceId", "ProductPrice.PriceId"),
            ("Orders.CustId", "Customer.CustId"),
            ("Orders.ProdId", "Product.ProdId"),
        ],
    )
    pb = ProgramBuilder("oracle2", source)
    pb.update(
        "addCustomer",
        [("id", "int"), ("name", "str"), ("street", "str"), ("city", "str"), ("state", "str"),
         ("zip", "int"), ("phone", "str")],
        insert(
            "Customer",
            {
                "Customer.CustId": "$id",
                "Customer.CName": "$name",
                "Customer.Street": "$street",
                "Customer.City": "$city",
                "Customer.State": "$state",
                "Customer.Zip": "$zip",
                "Customer.Phone": "$phone",
            },
        ),
    )
    pb.update("deleteCustomer", [("id", "int")],
              delete("Customer", "Customer", eq("Customer.CustId", "$id")))
    pb.query("getCustomerName", [("id", "int")],
             select(["Customer.CName"], "Customer", eq("Customer.CustId", "$id")))
    pb.query("getCustomerAddress", [("id", "int")],
             select(["Customer.Street", "Customer.City", "Customer.State", "Customer.Zip"],
                    "Customer", eq("Customer.CustId", "$id")))
    pb.query("getCustomerPhone", [("id", "int")],
             select(["Customer.Phone"], "Customer", eq("Customer.CustId", "$id")))
    pb.update("updateCustomerPhone", [("id", "int"), ("phone", "str")],
              update("Customer", eq("Customer.CustId", "$id"), "Customer.Phone", "$phone"))
    pb.update(
        "addProduct",
        [("id", "int"), ("name", "str"), ("price", "int"), ("category", "str"), ("supplier", "str")],
        insert(
            "Product",
            {
                "Product.ProdId": "$id",
                "Product.PName": "$name",
                "Product.Price": "$price",
                "Product.Category": "$category",
                "Product.Supplier": "$supplier",
            },
        ),
    )
    pb.update("deleteProduct", [("id", "int")],
              delete("Product", "Product", eq("Product.ProdId", "$id")))
    pb.query("getProductName", [("id", "int")],
             select(["Product.PName"], "Product", eq("Product.ProdId", "$id")))
    pb.query("getProductPrice", [("id", "int")],
             select(["Product.Price"], "Product", eq("Product.ProdId", "$id")))
    pb.query("getProductDetails", [("id", "int")],
             select(["Product.PName", "Product.Price", "Product.Category", "Product.Supplier"],
                    "Product", eq("Product.ProdId", "$id")))
    pb.query("getProductSupplier", [("id", "int")],
             select(["Product.Supplier"], "Product", eq("Product.ProdId", "$id")))
    pb.update("updateProductPrice", [("id", "int"), ("price", "int")],
              update("Product", eq("Product.ProdId", "$id"), "Product.Price", "$price"))
    pb.update(
        "addOrder",
        [("oid", "int"), ("cust", "int"), ("prod", "int"), ("qty", "int"), ("date", "str")],
        insert(
            "Orders",
            {
                "Orders.OrderId": "$oid",
                "Orders.CustId": "$cust",
                "Orders.ProdId": "$prod",
                "Orders.Quantity": "$qty",
                "Orders.OrderDate": "$date",
            },
        ),
    )
    pb.update("deleteOrder", [("oid", "int")],
              delete("Orders", "Orders", eq("Orders.OrderId", "$oid")))
    pb.query("getOrder", [("oid", "int")],
             select(["Orders.CustId", "Orders.ProdId", "Orders.Quantity"],
                    "Orders", eq("Orders.OrderId", "$oid")))
    pb.query("getOrdersByCustomer", [("cust", "int")],
             select(["Orders.OrderId", "Orders.Quantity"], "Orders", eq("Orders.CustId", "$cust")))
    pb.update("updateOrderQuantity", [("oid", "int"), ("qty", "int")],
              update("Orders", eq("Orders.OrderId", "$oid"), "Orders.Quantity", "$qty"))
    pb.query(
        "getOrderWithCustomer",
        [("oid", "int")],
        select(
            ["Customer.CName", "Orders.Quantity"],
            join(["Customer", "Orders"], on=[("Customer.CustId", "Orders.CustId")]),
            eq("Orders.OrderId", "$oid"),
        ),
    )
    return Benchmark(
        name="Oracle-2",
        description="Split tables",
        category="textbook",
        source_program=pb.build(),
        target_schema=target,
        paper_row={"funcs": 19, "value_corr": 1, "iters": 5, "synth_time": 0.5, "total_time": 11.3},
    )


# --------------------------------------------------------------------------- Ambler-1
@register("Ambler-1")
def ambler_1() -> Benchmark:
    """Split an employee table into employee + address."""
    source = make_schema(
        "ambler1_src",
        {
            "Employee": {
                "EmpId": T.INT,
                "Name": T.STRING,
                "Salary": T.INT,
                "Street": T.STRING,
                "City": T.STRING,
                "Zip": T.INT,
            },
        },
    )
    target = make_schema(
        "ambler1_tgt",
        {
            "Employee": {"EmpId": T.INT, "Name": T.STRING, "Salary": T.INT, "AddrId": T.INT},
            "Address": {"AddrId": T.INT, "Street": T.STRING, "City": T.STRING, "Zip": T.INT},
        },
        foreign_keys=[("Employee.AddrId", "Address.AddrId")],
    )
    pb = ProgramBuilder("ambler1", source)
    pb.update(
        "addEmployee",
        [("id", "int"), ("name", "str"), ("salary", "int"), ("street", "str"), ("city", "str"),
         ("zip", "int")],
        insert(
            "Employee",
            {
                "Employee.EmpId": "$id",
                "Employee.Name": "$name",
                "Employee.Salary": "$salary",
                "Employee.Street": "$street",
                "Employee.City": "$city",
                "Employee.Zip": "$zip",
            },
        ),
    )
    pb.update("deleteEmployee", [("id", "int")],
              delete("Employee", "Employee", eq("Employee.EmpId", "$id")))
    pb.query("getEmployee", [("id", "int")],
             select(["Employee.Name", "Employee.Salary"], "Employee", eq("Employee.EmpId", "$id")))
    pb.query("getSalary", [("id", "int")],
             select(["Employee.Salary"], "Employee", eq("Employee.EmpId", "$id")))
    pb.query("getAddress", [("id", "int")],
             select(["Employee.Street", "Employee.City", "Employee.Zip"],
                    "Employee", eq("Employee.EmpId", "$id")))
    pb.query("getEmployeesByCity", [("city", "str")],
             select(["Employee.EmpId", "Employee.Name"], "Employee", eq("Employee.City", "$city")))
    pb.update("updateSalary", [("id", "int"), ("salary", "int")],
              update("Employee", eq("Employee.EmpId", "$id"), "Employee.Salary", "$salary"))
    pb.update("updateCity", [("id", "int"), ("city", "str")],
              update("Employee", eq("Employee.EmpId", "$id"), "Employee.City", "$city"))
    pb.update("deleteByCity", [("city", "str")],
              delete("Employee", "Employee", eq("Employee.City", "$city")))
    pb.query("getName", [("id", "int")],
             select(["Employee.Name"], "Employee", eq("Employee.EmpId", "$id")))
    return Benchmark(
        name="Ambler-1",
        description="Split tables",
        category="textbook",
        source_program=pb.build(),
        target_schema=target,
        paper_row={"funcs": 10, "value_corr": 1, "iters": 2, "synth_time": 0.3, "total_time": 2.9},
    )


# --------------------------------------------------------------------------- Ambler-2
@register("Ambler-2")
def ambler_2() -> Benchmark:
    """Merge person and company contact tables into one party table."""
    source = make_schema(
        "ambler2_src",
        {
            "Person": {"PersonId": T.INT, "PName": T.STRING, "PPhone": T.STRING},
            "Company": {"CompId": T.INT, "CName": T.STRING, "CPhone": T.STRING, "Industry": T.STRING},
        },
    )
    target = make_schema(
        "ambler2_tgt",
        {
            "Party": {
                "PersonId": T.INT,
                "CompId": T.INT,
                "Name": T.STRING,
                "Phone": T.STRING,
                "Industry": T.STRING,
                "Kind": T.STRING,
            },
        },
    )
    pb = ProgramBuilder("ambler2", source)
    pb.update("addPerson", [("id", "int"), ("name", "str"), ("phone", "str")],
              insert("Person", {"Person.PersonId": "$id", "Person.PName": "$name", "Person.PPhone": "$phone"}))
    pb.update("deletePerson", [("id", "int")],
              delete("Person", "Person", eq("Person.PersonId", "$id")))
    pb.query("getPersonName", [("id", "int")],
             select(["Person.PName"], "Person", eq("Person.PersonId", "$id")))
    pb.query("getPersonPhone", [("id", "int")],
             select(["Person.PPhone"], "Person", eq("Person.PersonId", "$id")))
    pb.update("updatePersonPhone", [("id", "int"), ("phone", "str")],
              update("Person", eq("Person.PersonId", "$id"), "Person.PPhone", "$phone"))
    pb.update("addCompany", [("id", "int"), ("name", "str"), ("phone", "str"), ("industry", "str")],
              insert("Company", {"Company.CompId": "$id", "Company.CName": "$name",
                                 "Company.CPhone": "$phone", "Company.Industry": "$industry"}))
    pb.update("deleteCompany", [("id", "int")],
              delete("Company", "Company", eq("Company.CompId", "$id")))
    pb.query("getCompany", [("id", "int")],
             select(["Company.CName", "Company.CPhone"], "Company", eq("Company.CompId", "$id")))
    pb.query("getCompaniesByIndustry", [("industry", "str")],
             select(["Company.CName"], "Company", eq("Company.Industry", "$industry")))
    pb.update("updateCompanyPhone", [("id", "int"), ("phone", "str")],
              update("Company", eq("Company.CompId", "$id"), "Company.CPhone", "$phone"))
    return Benchmark(
        name="Ambler-2",
        description="Merge tables",
        category="textbook",
        source_program=pb.build(),
        target_schema=target,
        paper_row={"funcs": 10, "value_corr": 1, "iters": 1, "synth_time": 0.3, "total_time": 0.6},
    )


# --------------------------------------------------------------------------- Ambler-3
@register("Ambler-3")
def ambler_3() -> Benchmark:
    """Move the balance attribute from the customer table to the account table."""
    source = make_schema(
        "ambler3_src",
        {
            "Customer": {"CustId": T.INT, "Name": T.STRING, "Balance": T.INT},
            "Account": {"AccId": T.INT, "CustId": T.INT},
        },
        foreign_keys=[("Account.CustId", "Customer.CustId")],
    )
    target = make_schema(
        "ambler3_tgt",
        {
            "Customer": {"CustId": T.INT, "Name": T.STRING},
            "Account": {"AccId": T.INT, "CustId": T.INT, "Balance": T.INT},
        },
        foreign_keys=[("Account.CustId", "Customer.CustId")],
    )
    cust_acc = join(["Customer", "Account"], on=[("Customer.CustId", "Account.CustId")])
    pb = ProgramBuilder("ambler3", source)
    pb.update(
        "openAccount",
        [("cust", "int"), ("acc", "int"), ("name", "str"), ("balance", "int")],
        insert(
            cust_acc,
            {
                "Customer.CustId": "$cust",
                "Customer.Name": "$name",
                "Customer.Balance": "$balance",
                "Account.AccId": "$acc",
            },
        ),
    )
    pb.update("closeCustomer", [("cust", "int")],
              delete(["Customer", "Account"], cust_acc, eq("Customer.CustId", "$cust")))
    pb.query("getBalance", [("cust", "int")],
             select(["Customer.Balance"], cust_acc, eq("Customer.CustId", "$cust")))
    pb.query("getName", [("cust", "int")],
             select(["Customer.Name"], "Customer", eq("Customer.CustId", "$cust")))
    pb.query("getAccountOwner", [("acc", "int")],
             select(["Customer.Name"], cust_acc, eq("Account.AccId", "$acc")))
    pb.query("getAccounts", [("cust", "int")],
             select(["Account.AccId"], cust_acc, eq("Customer.CustId", "$cust")))
    pb.update("updateName", [("cust", "int"), ("name", "str")],
              update("Customer", eq("Customer.CustId", "$cust"), "Customer.Name", "$name"))
    return Benchmark(
        name="Ambler-3",
        description="Move attrs",
        category="textbook",
        source_program=pb.build(),
        target_schema=target,
        paper_row={"funcs": 7, "value_corr": 2, "iters": 5, "synth_time": 0.4, "total_time": 30.6},
    )


# --------------------------------------------------------------------------- Ambler-4
@register("Ambler-4")
def ambler_4() -> Benchmark:
    """Rename an attribute."""
    source = make_schema(
        "ambler4_src",
        {"Person": {"PersonId": T.INT, "FName": T.STRING}},
    )
    target = make_schema(
        "ambler4_tgt",
        {"Person": {"PersonId": T.INT, "FirstName": T.STRING}},
    )
    pb = ProgramBuilder("ambler4", source)
    pb.update("addPerson", [("id", "int"), ("name", "str")],
              insert("Person", {"Person.PersonId": "$id", "Person.FName": "$name"}))
    pb.update("deletePerson", [("id", "int")],
              delete("Person", "Person", eq("Person.PersonId", "$id")))
    pb.query("getName", [("id", "int")],
             select(["Person.FName"], "Person", eq("Person.PersonId", "$id")))
    pb.query("findByName", [("name", "str")],
             select(["Person.PersonId"], "Person", eq("Person.FName", "$name")))
    pb.update("renamePerson", [("id", "int"), ("name", "str")],
              update("Person", eq("Person.PersonId", "$id"), "Person.FName", "$name"))
    return Benchmark(
        name="Ambler-4",
        description="Rename attrs",
        category="textbook",
        source_program=pb.build(),
        target_schema=target,
        paper_row={"funcs": 5, "value_corr": 1, "iters": 1, "synth_time": 0.3, "total_time": 0.5},
    )


# --------------------------------------------------------------------------- Ambler-5
@register("Ambler-5")
def ambler_5() -> Benchmark:
    """Introduce an associative table for the employee/department relationship."""
    source = make_schema(
        "ambler5_src",
        {
            "Employee": {"EmpId": T.INT, "Name": T.STRING, "DeptId": T.INT},
            "Department": {"DeptId": T.INT, "DName": T.STRING},
        },
        foreign_keys=[("Employee.DeptId", "Department.DeptId")],
    )
    target = make_schema(
        "ambler5_tgt",
        {
            "Employee": {"EmpId": T.INT, "Name": T.STRING},
            "Department": {"DeptId": T.INT, "DName": T.STRING},
            "Works": {"EmpId": T.INT, "DeptId": T.INT},
        },
        foreign_keys=[("Works.EmpId", "Employee.EmpId"), ("Works.DeptId", "Department.DeptId")],
    )
    emp_dept = join(["Employee", "Department"], on=[("Employee.DeptId", "Department.DeptId")])
    pb = ProgramBuilder("ambler5", source)
    pb.update("addEmployee", [("id", "int"), ("name", "str"), ("dept", "int")],
              insert("Employee", {"Employee.EmpId": "$id", "Employee.Name": "$name",
                                  "Employee.DeptId": "$dept"}))
    pb.update("addDepartment", [("dept", "int"), ("dname", "str")],
              insert("Department", {"Department.DeptId": "$dept", "Department.DName": "$dname"}))
    pb.update("deleteEmployee", [("id", "int")],
              delete("Employee", "Employee", eq("Employee.EmpId", "$id")))
    pb.update("deleteDepartment", [("dept", "int")],
              delete("Department", "Department", eq("Department.DeptId", "$dept")))
    pb.query("getEmployeeName", [("id", "int")],
             select(["Employee.Name"], "Employee", eq("Employee.EmpId", "$id")))
    pb.query("getEmployeeDeptId", [("id", "int")],
             select(["Employee.DeptId"], "Employee", eq("Employee.EmpId", "$id")))
    pb.query("getEmployeesInDept", [("dept", "int")],
             select(["Employee.EmpId"], "Employee", eq("Employee.DeptId", "$dept")))
    pb.query("getEmployeeDeptName", [("id", "int")],
             select(["Department.DName"], emp_dept, eq("Employee.EmpId", "$id")))
    return Benchmark(
        name="Ambler-5",
        description="Add associative tables",
        category="textbook",
        source_program=pb.build(),
        target_schema=target,
        paper_row={"funcs": 8, "value_corr": 5, "iters": 7, "synth_time": 0.3, "total_time": 3.1},
    )


# --------------------------------------------------------------------------- Ambler-6
@register("Ambler-6")
def ambler_6() -> Benchmark:
    """Replace a surrogate key with the natural key (drop the surrogate)."""
    source = make_schema(
        "ambler6_src",
        {
            "Person": {"PersonId": T.INT, "SSN": T.INT, "Name": T.STRING},
            "Orders": {
                "OrderId": T.INT,
                "PersonId": T.INT,
                "SSN": T.INT,
                "Amount": T.INT,
                "OrderDate": T.STRING,
                "Status": T.STRING,
            },
        },
    )
    target = make_schema(
        "ambler6_tgt",
        {
            "Person": {"SSN": T.INT, "Name": T.STRING, "Phone": T.STRING},
            "Orders": {
                "OrderId": T.INT,
                "SSN": T.INT,
                "Amount": T.INT,
                "OrderDate": T.STRING,
                "Status": T.STRING,
            },
        },
    )
    pb = ProgramBuilder("ambler6", source)
    pb.update("addPerson", [("pid", "int"), ("ssn", "int"), ("name", "str")],
              insert("Person", {"Person.PersonId": "$pid", "Person.SSN": "$ssn", "Person.Name": "$name"}))
    pb.update("addOrder", [("oid", "int"), ("pid", "int"), ("ssn", "int"), ("amount", "int"),
                           ("date", "str"), ("status", "str")],
              insert("Orders", {"Orders.OrderId": "$oid", "Orders.PersonId": "$pid",
                                "Orders.SSN": "$ssn", "Orders.Amount": "$amount",
                                "Orders.OrderDate": "$date", "Orders.Status": "$status"}))
    pb.query("getPersonName", [("ssn", "int")],
             select(["Person.Name"], "Person", eq("Person.SSN", "$ssn")))
    pb.query("getOrdersBySSN", [("ssn", "int")],
             select(["Orders.Amount", "Orders.OrderDate"], "Orders", eq("Orders.SSN", "$ssn")))
    pb.query("getOrderStatus", [("oid", "int")],
             select(["Orders.Status"], "Orders", eq("Orders.OrderId", "$oid")))
    pb.update("deletePerson", [("ssn", "int")],
              delete("Person", "Person", eq("Person.SSN", "$ssn")))
    pb.update("deleteOrder", [("oid", "int")],
              delete("Orders", "Orders", eq("Orders.OrderId", "$oid")))
    pb.update("updateStatus", [("oid", "int"), ("status", "str")],
              update("Orders", eq("Orders.OrderId", "$oid"), "Orders.Status", "$status"))
    pb.query("getPersonOrders", [("ssn", "int")],
             select(["Person.Name", "Orders.Amount"],
                    join(["Person", "Orders"], on=[("Person.SSN", "Orders.SSN")]),
                    eq("Person.SSN", "$ssn")))
    pb.update("updateAmount", [("oid", "int"), ("amount", "int")],
              update("Orders", eq("Orders.OrderId", "$oid"), "Orders.Amount", "$amount"))
    return Benchmark(
        name="Ambler-6",
        description="Replace keys",
        category="textbook",
        source_program=pb.build(),
        target_schema=target,
        paper_row={"funcs": 10, "value_corr": 1, "iters": 1, "synth_time": 0.3, "total_time": 0.7},
    )


# --------------------------------------------------------------------------- Ambler-7
@register("Ambler-7")
def ambler_7() -> Benchmark:
    """Add new attributes to the target schema (source program unchanged)."""
    source = make_schema(
        "ambler7_src",
        {
            "Product": {"ProdId": T.INT, "Name": T.STRING, "Price": T.INT},
            "Review": {"RevId": T.INT, "ProdId": T.INT, "Rating": T.INT, "Comment": T.STRING},
        },
        foreign_keys=[("Review.ProdId", "Product.ProdId")],
    )
    target = make_schema(
        "ambler7_tgt",
        {
            "Product": {"ProdId": T.INT, "Name": T.STRING, "Price": T.INT, "Discontinued": T.BOOL},
            "Review": {"RevId": T.INT, "ProdId": T.INT, "Rating": T.INT, "Comment": T.STRING},
        },
        foreign_keys=[("Review.ProdId", "Product.ProdId")],
    )
    prod_rev = join(["Product", "Review"], on=[("Product.ProdId", "Review.ProdId")])
    pb = ProgramBuilder("ambler7", source)
    pb.update("addProduct", [("id", "int"), ("name", "str"), ("price", "int")],
              insert("Product", {"Product.ProdId": "$id", "Product.Name": "$name",
                                 "Product.Price": "$price"}))
    pb.update("addReview", [("rid", "int"), ("pid", "int"), ("rating", "int"), ("comment", "str")],
              insert("Review", {"Review.RevId": "$rid", "Review.ProdId": "$pid",
                                "Review.Rating": "$rating", "Review.Comment": "$comment"}))
    pb.update("deleteProduct", [("id", "int")],
              delete("Product", "Product", eq("Product.ProdId", "$id")))
    pb.update("deleteReview", [("rid", "int")],
              delete("Review", "Review", eq("Review.RevId", "$rid")))
    pb.query("getProduct", [("id", "int")],
             select(["Product.Name", "Product.Price"], "Product", eq("Product.ProdId", "$id")))
    pb.query("getProductReviews", [("id", "int")],
             select(["Review.Rating", "Review.Comment"], "Review", eq("Review.ProdId", "$id")))
    pb.query("getReviewedProducts", [("rating", "int")],
             select(["Product.Name"], prod_rev, eq("Review.Rating", "$rating")))
    pb.update("updatePrice", [("id", "int"), ("price", "int")],
              update("Product", eq("Product.ProdId", "$id"), "Product.Price", "$price"))
    return Benchmark(
        name="Ambler-7",
        description="Add attrs",
        category="textbook",
        source_program=pb.build(),
        target_schema=target,
        paper_row={"funcs": 8, "value_corr": 1, "iters": 1, "synth_time": 0.3, "total_time": 0.6},
    )


# --------------------------------------------------------------------------- Ambler-8
@register("Ambler-8")
def ambler_8() -> Benchmark:
    """Denormalization: the target duplicates customer/product data into orders."""
    source = make_schema(
        "ambler8_src",
        {
            "Customer": {"CustId": T.INT, "Name": T.STRING, "City": T.STRING},
            "Product": {"ProdId": T.INT, "PName": T.STRING, "Price": T.INT},
            "Orders": {"OrderId": T.INT, "CustId": T.INT, "ProdId": T.INT, "Qty": T.INT},
        },
        foreign_keys=[("Orders.CustId", "Customer.CustId"), ("Orders.ProdId", "Product.ProdId")],
    )
    target = make_schema(
        "ambler8_tgt",
        {
            "Customer": {"CustId": T.INT, "Name": T.STRING, "City": T.STRING},
            "Product": {"ProdId": T.INT, "PName": T.STRING, "Price": T.INT},
            "Orders": {
                "OrderId": T.INT,
                "CustId": T.INT,
                "ProdId": T.INT,
                "Qty": T.INT,
                "CustName": T.STRING,
                "ProdName": T.STRING,
                "ProdPrice": T.INT,
            },
        },
        foreign_keys=[("Orders.CustId", "Customer.CustId"), ("Orders.ProdId", "Product.ProdId")],
    )
    cust_orders = join(["Customer", "Orders"], on=[("Customer.CustId", "Orders.CustId")])
    prod_orders = join(["Product", "Orders"], on=[("Product.ProdId", "Orders.ProdId")])
    full_join = join(
        ["Customer", "Orders", "Product"],
        on=[("Customer.CustId", "Orders.CustId"), ("Orders.ProdId", "Product.ProdId")],
    )
    pb = ProgramBuilder("ambler8", source)
    pb.update("addCustomer", [("id", "int"), ("name", "str"), ("city", "str")],
              insert("Customer", {"Customer.CustId": "$id", "Customer.Name": "$name",
                                  "Customer.City": "$city"}))
    pb.update("addProduct", [("id", "int"), ("name", "str"), ("price", "int")],
              insert("Product", {"Product.ProdId": "$id", "Product.PName": "$name",
                                 "Product.Price": "$price"}))
    pb.update("addOrder", [("oid", "int"), ("cust", "int"), ("prod", "int"), ("qty", "int")],
              insert("Orders", {"Orders.OrderId": "$oid", "Orders.CustId": "$cust",
                                "Orders.ProdId": "$prod", "Orders.Qty": "$qty"}))
    pb.update("deleteCustomer", [("id", "int")],
              delete("Customer", "Customer", eq("Customer.CustId", "$id")))
    pb.update("deleteProduct", [("id", "int")],
              delete("Product", "Product", eq("Product.ProdId", "$id")))
    pb.update("deleteOrder", [("oid", "int")],
              delete("Orders", "Orders", eq("Orders.OrderId", "$oid")))
    pb.query("getCustomerName", [("id", "int")],
             select(["Customer.Name"], "Customer", eq("Customer.CustId", "$id")))
    pb.query("getCustomerCity", [("id", "int")],
             select(["Customer.City"], "Customer", eq("Customer.CustId", "$id")))
    pb.query("getProductPrice", [("id", "int")],
             select(["Product.Price"], "Product", eq("Product.ProdId", "$id")))
    pb.query("getOrderQty", [("oid", "int")],
             select(["Orders.Qty"], "Orders", eq("Orders.OrderId", "$oid")))
    pb.query("getOrderCustomer", [("oid", "int")],
             select(["Customer.Name"], cust_orders, eq("Orders.OrderId", "$oid")))
    pb.query("getOrderProduct", [("oid", "int")],
             select(["Product.PName", "Product.Price"], prod_orders, eq("Orders.OrderId", "$oid")))
    pb.query("getOrderSummary", [("oid", "int")],
             select(["Customer.Name", "Product.PName", "Orders.Qty"], full_join,
                    eq("Orders.OrderId", "$oid")))
    pb.update("updateQty", [("oid", "int"), ("qty", "int")],
              update("Orders", eq("Orders.OrderId", "$oid"), "Orders.Qty", "$qty"))
    return Benchmark(
        name="Ambler-8",
        description="Denormalization",
        category="textbook",
        source_program=pb.build(),
        target_schema=target,
        paper_row={"funcs": 14, "value_corr": 1, "iters": 7, "synth_time": 0.5, "total_time": 3.1},
    )
