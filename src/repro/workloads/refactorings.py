"""Schema refactoring operations used to derive target schemas.

The real-world benchmarks are generated: a base (source) schema is described
once, and the target schema is obtained by applying the refactoring
operations that the paper's Table 1 lists for each application (split tables,
rename attributes/tables, move attributes, merge tables, add attributes).

Operations work on a lightweight :class:`SchemaSpec` so that they compose
before the final :class:`repro.datamodel.Schema` objects are built.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.datamodel.schema import Schema, make_schema
from repro.datamodel.types import DataType


@dataclass
class SchemaSpec:
    """A mutable, declarative schema description."""

    name: str
    tables: dict[str, dict[str, DataType]] = field(default_factory=dict)
    foreign_keys: list[tuple[str, str]] = field(default_factory=list)

    def copy(self, name: str | None = None) -> "SchemaSpec":
        duplicate = SchemaSpec(
            name or self.name,
            {t: dict(cols) for t, cols in self.tables.items()},
            list(self.foreign_keys),
        )
        return duplicate

    @classmethod
    def from_schema(cls, schema: Schema, name: str | None = None) -> "SchemaSpec":
        """Rebuild an editable spec from a built :class:`Schema`.

        Deriving target-schema *variants* (e.g. the migration service's
        "candidate refactorings of the planned target" batches) starts from
        an existing schema; this inverts :meth:`build`.
        """
        return cls(
            name or schema.name,
            {
                table_name: {
                    attr.name: table.type_of(attr.name) for attr in table.attributes
                }
                for table_name, table in schema.tables.items()
            },
            [
                (
                    f"{fk.source.table}.{fk.source.name}",
                    f"{fk.target.table}.{fk.target.name}",
                )
                for fk in schema.foreign_keys
            ],
        )

    def build(self) -> Schema:
        return make_schema(self.name, self.tables, foreign_keys=self.foreign_keys)

    def num_attributes(self) -> int:
        return sum(len(cols) for cols in self.tables.values())

    def num_tables(self) -> int:
        return len(self.tables)

    # ------------------------------------------------------------------ edits
    def add_table(self, table: str, columns: dict[str, DataType]) -> None:
        if table in self.tables:
            raise ValueError(f"table {table!r} already exists")
        self.tables[table] = dict(columns)

    def add_column(self, table: str, column: str, dtype: DataType) -> None:
        self.tables[table][column] = dtype

    def add_foreign_key(self, source: str, target: str) -> None:
        self.foreign_keys.append((source, target))


class RefactoringError(Exception):
    """Raised when a refactoring operation cannot be applied."""


# ------------------------------------------------------------------------ operations
def split_table(
    spec: SchemaSpec,
    table: str,
    moved_columns: Iterable[str],
    new_table: str,
    link_column: str,
) -> SchemaSpec:
    """Move *moved_columns* of *table* into *new_table*, linked by *link_column*.

    This is the classic vertical-split refactoring: the new table gets the
    moved columns plus the link column, and the original table keeps its
    remaining columns plus the link column.
    """
    result = spec.copy()
    if table not in result.tables:
        raise RefactoringError(f"unknown table {table!r}")
    if new_table in result.tables:
        raise RefactoringError(f"table {new_table!r} already exists")
    moved = list(moved_columns)
    for column in moved:
        if column not in result.tables[table]:
            raise RefactoringError(f"table {table!r} has no column {column!r}")
    if not moved:
        raise RefactoringError(f"split of table {table!r} must move at least one column")
    if len(moved) >= len(result.tables[table]):
        raise RefactoringError(
            f"cannot split table {table!r}: moving all {len(moved)} of its columns"
        )
    if link_column in result.tables[table] or link_column in moved:
        raise RefactoringError(
            f"link column {link_column!r} already exists on table {table!r}"
        )
    new_columns: dict[str, DataType] = {link_column: DataType.INT}
    for column in moved:
        new_columns[column] = result.tables[table].pop(column)
    result.tables[table][link_column] = DataType.INT
    result.add_table(new_table, new_columns)
    result.add_foreign_key(f"{table}.{link_column}", f"{new_table}.{link_column}")
    return result


def rename_column(spec: SchemaSpec, table: str, old: str, new: str) -> SchemaSpec:
    result = spec.copy()
    if table not in result.tables or old not in result.tables[table]:
        raise RefactoringError(f"unknown column {table}.{old}")
    if new in result.tables[table]:
        raise RefactoringError(f"column {table}.{new} already exists")
    columns = result.tables[table]
    result.tables[table] = {new if c == old else c: t for c, t in columns.items()}
    result.foreign_keys = [
        (
            src.replace(f"{table}.{old}", f"{table}.{new}"),
            dst.replace(f"{table}.{old}", f"{table}.{new}"),
        )
        for src, dst in result.foreign_keys
    ]
    return result


def rename_variants(schema: Schema, count: int, *, base_name: str | None = None) -> list[Schema]:
    """*count* column-rename variants of a built *schema*.

    The migration-service batch scenario ("try these candidate refactorings
    of the planned target"): each variant renames one column of the schema's
    first table, cycling through its columns when *count* exceeds them.
    Used by both ``examples/service_batch.py`` and
    ``benchmarks/bench_service.py`` so the demo and the measured batch stay
    the same shape.
    """
    base = SchemaSpec.from_schema(schema, base_name)
    table = next(iter(base.tables))
    columns = list(base.tables[table])
    variants = []
    for index in range(count):
        column = columns[index % len(columns)]
        spec = rename_column(
            base.copy(f"{base.name}_{index}"), table, column, f"{column}_r{index}"
        )
        variants.append(spec.build())
    return variants


def rename_table(spec: SchemaSpec, old: str, new: str) -> SchemaSpec:
    result = spec.copy()
    if old not in result.tables:
        raise RefactoringError(f"unknown table {old!r}")
    if new in result.tables:
        raise RefactoringError(f"table {new!r} already exists")
    result.tables = {new if t == old else t: cols for t, cols in result.tables.items()}
    result.foreign_keys = [
        (src.replace(f"{old}.", f"{new}."), dst.replace(f"{old}.", f"{new}."))
        for src, dst in result.foreign_keys
    ]
    return result


def add_column(spec: SchemaSpec, table: str, column: str, dtype: DataType) -> SchemaSpec:
    result = spec.copy()
    if table not in result.tables:
        raise RefactoringError(f"unknown table {table!r}")
    if column in result.tables[table]:
        raise RefactoringError(f"column {table}.{column} already exists")
    result.tables[table][column] = dtype
    return result


def merge_tables(
    spec: SchemaSpec,
    left: str,
    right: str,
    merged: str,
    extra_columns: Optional[dict[str, DataType]] = None,
) -> SchemaSpec:
    """Merge two tables into one table containing the union of their columns.

    Column names of the two tables must be disjoint (the benchmark generator
    guarantees this by prefixing columns with their entity name).
    """
    result = spec.copy()
    for table in (left, right):
        if table not in result.tables:
            raise RefactoringError(f"unknown table {table!r}")
    if left == right:
        raise RefactoringError(f"cannot merge table {left!r} with itself")
    overlap = set(result.tables[left]) & set(result.tables[right])
    if overlap:
        raise RefactoringError(
            f"cannot merge {left!r} and {right!r}: shared columns {sorted(overlap)}"
        )
    if merged in result.tables and merged not in (left, right):
        raise RefactoringError(
            f"cannot merge {left!r} and {right!r} into {merged!r}: table already exists"
        )
    merged_columns = dict(result.tables[left])
    merged_columns.update(result.tables[right])
    extra_overlap = set(extra_columns or {}) & set(merged_columns)
    if extra_overlap:
        raise RefactoringError(
            f"cannot merge {left!r} and {right!r} into {merged!r}: "
            f"extra columns {sorted(extra_overlap)} collide with merged columns"
        )
    merged_columns.update(extra_columns or {})
    del result.tables[left]
    del result.tables[right]
    result.foreign_keys = [
        (
            src.replace(f"{left}.", f"{merged}.").replace(f"{right}.", f"{merged}."),
            dst.replace(f"{left}.", f"{merged}.").replace(f"{right}.", f"{merged}."),
        )
        for src, dst in result.foreign_keys
    ]
    result.add_table(merged, merged_columns)
    return result


def move_column_to_new_table(
    spec: SchemaSpec, table: str, column: str, new_table: str, link_column: str
) -> SchemaSpec:
    """Move a single column into a freshly created table (a one-column split)."""
    return split_table(spec, table, [column], new_table, link_column)


def fold_table(
    spec: SchemaSpec, table: str, folded_table: str, link_column: str
) -> SchemaSpec:
    """Fold *folded_table* back into *table*, undoing a vertical split.

    The exact inverse of :func:`split_table`: the folded table's non-link
    columns return to *table*, the link column disappears from both sides,
    and the linking foreign key is dropped.  Only sound when the two tables
    are in 1-1 correspondence through *link_column* (which holds by
    construction when *folded_table* was produced by splitting *table*) —
    the corpus generator tracks that provenance and only folds such pairs.
    """
    result = spec.copy()
    for name in (table, folded_table):
        if name not in result.tables:
            raise RefactoringError(f"unknown table {name!r}")
    if table == folded_table:
        raise RefactoringError(f"cannot fold table {table!r} into itself")
    for name in (table, folded_table):
        if link_column not in result.tables[name]:
            raise RefactoringError(
                f"table {name!r} has no link column {link_column!r}"
            )
    returning = {
        column: dtype
        for column, dtype in result.tables[folded_table].items()
        if column != link_column
    }
    collisions = set(returning) & set(result.tables[table])
    if collisions:
        raise RefactoringError(
            f"cannot fold {folded_table!r} into {table!r}: "
            f"columns {sorted(collisions)} already exist on {table!r}"
        )
    del result.tables[folded_table]
    del result.tables[table][link_column]
    result.tables[table].update(returning)
    result.foreign_keys = [
        (src, dst)
        for src, dst in result.foreign_keys
        if not any(
            ref.startswith(f"{folded_table}.") or ref == f"{table}.{link_column}"
            for ref in (src, dst)
        )
    ]
    return result
