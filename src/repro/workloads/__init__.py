"""Benchmark workloads: the 20 reconstructed schema-refactoring scenarios."""

from repro.workloads.crud import CrudProgramGenerator, EntityDef, JoinQuerySpec
from repro.workloads.refactorings import (
    RefactoringError,
    SchemaSpec,
    add_column,
    fold_table,
    merge_tables,
    move_column_to_new_table,
    rename_column,
    rename_table,
    rename_variants,
    split_table,
)
from repro.workloads.registry import (
    REGISTRY,
    Benchmark,
    BenchmarkRegistry,
    benchmark_names,
    get_benchmark,
    load_all,
)

__all__ = [
    "Benchmark",
    "BenchmarkRegistry",
    "CrudProgramGenerator",
    "EntityDef",
    "JoinQuerySpec",
    "REGISTRY",
    "RefactoringError",
    "SchemaSpec",
    "add_column",
    "benchmark_names",
    "fold_table",
    "get_benchmark",
    "load_all",
    "merge_tables",
    "move_column_to_new_table",
    "rename_column",
    "rename_table",
    "rename_variants",
    "split_table",
]
