"""Cross-sketch counterexample pool.

Algorithm 2 re-runs bounded testing from scratch for every candidate of
every sketch, yet a failing input discovered while completing one sketch
almost always kills later candidates too: candidates share the source
program's function signatures, and most wrong completions are wrong in the
same few ways.  The pool records every minimum failing input (and every
verifier counterexample) found by any completion attempt; each new candidate
is screened against the pool — cheapest sequence first — before the full
``SequenceGenerator`` enumeration runs.

A pool hit yields a *sound* failing input for the candidate: the candidate
provably differs from the source on that sequence.  It is not necessarily a
*minimum* failing input, so MFI-based blocking derived from a hit prunes no
more than a fresh enumeration would — the trade is a slightly weaker
blocking clause for skipping the exponential sequence enumeration entirely.

The pool is size-bounded: when full, the entry with the fewest screening
hits (oldest first) is evicted, keeping the sequences that actually kill
candidates.

Screening order is computed once and cached: the sort key only changes when
a sequence is added, evicted, or scores a hit, so the O(n log n) sort runs
per pool *mutation*, not per screened candidate
(``stats.snapshot_sorts`` counts actual sorts; pinned by a regression test).
Under the columnar backend, :meth:`CounterexamplePool.screen_batch` screens
a candidate against chunks of pooled sequences through the batch kernels
while preserving the scalar path's first-hit answer and per-sequence
bookkeeping.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro.equivalence.invocation import InvocationSequence


@dataclass
class PoolStatistics:
    added: int = 0
    duplicates: int = 0
    evicted: int = 0
    hits: int = 0
    candidates_screened: int = 0
    sequences_screened: int = 0
    #: Subset of ``sequences_screened`` executed through a batch kernel.
    sequences_screened_batched: int = 0
    #: Batch-kernel calls made by :meth:`screen_batch`.
    screening_batches: int = 0
    #: Largest single batch handed to the kernel (high-water mark).
    max_batch_size: int = 0
    #: Times the screening order was actually sorted (≤ pool mutations).
    snapshot_sorts: int = 0
    screening_time: float = 0.0


@dataclass
class _Entry:
    insertion: int
    hits: int = 0


class CounterexamplePool:
    """Size-bounded pool of known failing invocation sequences."""

    #: First chunk size used by :meth:`screen_batch`; chunks grow by
    #: :attr:`BATCH_GROWTH` up to :attr:`MAX_BATCH`.  Small-first keeps a
    #: first-sequence hit (the common case — pools are sorted by kill rate)
    #: from paying for a large batch, while candidates that survive early
    #: sequences quickly amortize dispatch over big batches.  The trie
    #: kernel makes marginal sequences nearly free (shared prefixes execute
    #: once), so chunks start moderately sized and grow steeply: fewer
    #: chunks means fewer kernel dispatches and more prefix sharing per
    #: dispatch, which dominates screening cost for surviving candidates.
    FIRST_BATCH = 16
    BATCH_GROWTH = 16
    MAX_BATCH = 512

    def __init__(self, max_size: int = 256):
        if max_size <= 0:
            raise ValueError("max_size must be positive")
        self.max_size = max_size
        self.stats = PoolStatistics()
        self._entries: dict[InvocationSequence, _Entry] = {}
        self._insertions = 0
        self._order: Optional[list[InvocationSequence]] = None

    # ------------------------------------------------------------- maintenance
    def add(self, sequence: InvocationSequence) -> bool:
        """Record a counterexample; returns ``True`` if it was new."""
        if sequence in self._entries:
            self.stats.duplicates += 1
            return False
        self._entries[sequence] = _Entry(self._insertions)
        self._insertions += 1
        self.stats.added += 1
        while len(self._entries) > self.max_size:
            # Never evict the entry just added: once every retained entry has
            # scored a hit, a zero-hit newcomer would otherwise always be the
            # minimum and new failure modes could never enter the pool.
            victim = min(
                (seq for seq in self._entries if seq != sequence),
                key=lambda seq: (self._entries[seq].hits, self._entries[seq].insertion),
            )
            del self._entries[victim]
            self.stats.evicted += 1
        self._order = None
        return True

    def merge(self, sequences: Iterable[InvocationSequence]) -> int:
        """Add many counterexamples (e.g. from a parallel worker); count new ones."""
        return sum(1 for sequence in sequences if self.add(sequence))

    def snapshot(self) -> list[InvocationSequence]:
        """The pooled sequences, cheapest (screening order) first.

        Cached between mutations; callers must not mutate the returned list.
        """
        if self._order is None:
            self.stats.snapshot_sorts += 1
            self._order = sorted(
                self._entries,
                key=lambda seq: (
                    len(seq),
                    -self._entries[seq].hits,
                    self._entries[seq].insertion,
                ),
            )
        return self._order

    def _record_hit(self, sequence: InvocationSequence) -> None:
        self._entries[sequence].hits += 1
        self.stats.hits += 1
        self._order = None  # hit counts participate in the screening order

    # --------------------------------------------------------------- screening
    def screen(
        self,
        candidate,
        differs_on: Callable[[object, InvocationSequence], bool],
        budget: Optional[int] = None,
    ) -> Optional[InvocationSequence]:
        """First pooled sequence on which *candidate* fails, or ``None``.

        ``differs_on`` is the tester's oracle (so source outputs flow through
        the shared source cache).  At most *budget* sequences are executed,
        shortest first — screening must stay far cheaper than the full
        enumeration it tries to avoid.
        """
        self.stats.candidates_screened += 1
        started = time.perf_counter()
        try:
            for count, sequence in enumerate(self.snapshot()):
                if budget is not None and count >= budget:
                    return None
                self.stats.sequences_screened += 1
                if differs_on(candidate, sequence):
                    self._record_hit(sequence)
                    return sequence
            return None
        finally:
            self.stats.screening_time += time.perf_counter() - started

    def screen_batch(
        self,
        candidate,
        differs_on_batch: Callable[[object, list[InvocationSequence]], Optional[int]],
        budget: Optional[int] = None,
    ) -> Optional[InvocationSequence]:
        """Batched :meth:`screen`: same answer, chunked execution.

        ``differs_on_batch(candidate, sequences)`` must return the index of
        the **first** sequence (in the given order) on which the candidate
        fails, or ``None`` — the tester's batched oracle guarantees
        first-divergence order, so the sequence returned here is exactly the
        one :meth:`screen` would have returned.  ``stats.sequences_screened``
        counts sequences up to and including the hit (scalar-identical),
        while ``stats.sequences_screened_batched`` counts sequences actually
        handed to the kernel.
        """
        self.stats.candidates_screened += 1
        started = time.perf_counter()
        try:
            order = self.snapshot()
            if budget is not None:
                order = order[:budget]
            chunk_size = self.FIRST_BATCH
            start = 0
            while start < len(order):
                chunk = order[start : start + chunk_size]
                self.stats.screening_batches += 1
                self.stats.sequences_screened_batched += len(chunk)
                if len(chunk) > self.stats.max_batch_size:
                    self.stats.max_batch_size = len(chunk)
                self.stats.sequences_screened += len(chunk)
                index = differs_on_batch(candidate, chunk)
                if index is not None:
                    # The scalar path would have stopped at the hit; don't
                    # count the rest of the chunk as screened.
                    self.stats.sequences_screened -= len(chunk) - (index + 1)
                    sequence = chunk[index]
                    self._record_hit(sequence)
                    return sequence
                start += len(chunk)
                chunk_size = min(chunk_size * self.BATCH_GROWTH, self.MAX_BATCH)
            return None
        finally:
            self.stats.screening_time += time.perf_counter() - started

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, sequence: InvocationSequence) -> bool:
        return sequence in self._entries
