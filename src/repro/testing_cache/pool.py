"""Cross-sketch counterexample pool.

Algorithm 2 re-runs bounded testing from scratch for every candidate of
every sketch, yet a failing input discovered while completing one sketch
almost always kills later candidates too: candidates share the source
program's function signatures, and most wrong completions are wrong in the
same few ways.  The pool records every minimum failing input (and every
verifier counterexample) found by any completion attempt; each new candidate
is screened against the pool — cheapest sequence first — before the full
``SequenceGenerator`` enumeration runs.

A pool hit yields a *sound* failing input for the candidate: the candidate
provably differs from the source on that sequence.  It is not necessarily a
*minimum* failing input, so MFI-based blocking derived from a hit prunes no
more than a fresh enumeration would — the trade is a slightly weaker
blocking clause for skipping the exponential sequence enumeration entirely.

The pool is size-bounded: when full, the entry with the fewest screening
hits (oldest first) is evicted, keeping the sequences that actually kill
candidates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro.equivalence.invocation import InvocationSequence


@dataclass
class PoolStatistics:
    added: int = 0
    duplicates: int = 0
    evicted: int = 0
    hits: int = 0
    candidates_screened: int = 0
    sequences_screened: int = 0
    screening_time: float = 0.0


@dataclass
class _Entry:
    insertion: int
    hits: int = 0


class CounterexamplePool:
    """Size-bounded pool of known failing invocation sequences."""

    def __init__(self, max_size: int = 256):
        if max_size <= 0:
            raise ValueError("max_size must be positive")
        self.max_size = max_size
        self.stats = PoolStatistics()
        self._entries: dict[InvocationSequence, _Entry] = {}
        self._insertions = 0

    # ------------------------------------------------------------- maintenance
    def add(self, sequence: InvocationSequence) -> bool:
        """Record a counterexample; returns ``True`` if it was new."""
        if sequence in self._entries:
            self.stats.duplicates += 1
            return False
        self._entries[sequence] = _Entry(self._insertions)
        self._insertions += 1
        self.stats.added += 1
        while len(self._entries) > self.max_size:
            # Never evict the entry just added: once every retained entry has
            # scored a hit, a zero-hit newcomer would otherwise always be the
            # minimum and new failure modes could never enter the pool.
            victim = min(
                (seq for seq in self._entries if seq != sequence),
                key=lambda seq: (self._entries[seq].hits, self._entries[seq].insertion),
            )
            del self._entries[victim]
            self.stats.evicted += 1
        return True

    def merge(self, sequences: Iterable[InvocationSequence]) -> int:
        """Add many counterexamples (e.g. from a parallel worker); count new ones."""
        return sum(1 for sequence in sequences if self.add(sequence))

    def snapshot(self) -> list[InvocationSequence]:
        """The pooled sequences, cheapest (screening order) first."""
        return sorted(
            self._entries,
            key=lambda seq: (
                len(seq),
                -self._entries[seq].hits,
                self._entries[seq].insertion,
            ),
        )

    # --------------------------------------------------------------- screening
    def screen(
        self,
        candidate,
        differs_on: Callable[[object, InvocationSequence], bool],
        budget: Optional[int] = None,
    ) -> Optional[InvocationSequence]:
        """First pooled sequence on which *candidate* fails, or ``None``.

        ``differs_on`` is the tester's oracle (so source outputs flow through
        the shared source cache).  At most *budget* sequences are executed,
        shortest first — screening must stay far cheaper than the full
        enumeration it tries to avoid.
        """
        self.stats.candidates_screened += 1
        started = time.perf_counter()
        try:
            for count, sequence in enumerate(self.snapshot()):
                if budget is not None and count >= budget:
                    return None
                self.stats.sequences_screened += 1
                if differs_on(candidate, sequence):
                    self._entries[sequence].hits += 1
                    self.stats.hits += 1
                    return sequence
            return None
        finally:
            self.stats.screening_time += time.perf_counter() - started

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, sequence: InvocationSequence) -> bool:
        return sequence in self._entries
