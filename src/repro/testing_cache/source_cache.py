"""Shared, size-bounded cache of canonicalized source-program outputs.

The bounded tester repeatedly executes the *same* source program on the
*same* invocation sequences while it tests hundreds of candidate
completions.  The seed implementation kept one unbounded ``dict`` per
:class:`~repro.equivalence.tester.BoundedTester`, which was rebuilt for
every synthesizer run and grew without bound on the larger benchmarks.
This module replaces it with an LRU cache that

* is keyed by ``(program fingerprint, sequence)`` so one instance can be
  shared by every tester living in the same process (the synthesizer's main
  tester, the BMC baseline's tester; each parallel worker *process* keeps
  one instance shared across its tasks, so budget ``workers × max_entries``
  when sizing a parallel sweep), and
* evicts least-recently-used entries once ``max_entries`` is reached, so
  memory stays bounded on exhaustive Table 2/3 sweeps.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable, Optional

_MISSING = object()


@dataclass
class SourceCacheStatistics:
    hits: int = 0
    misses: int = 0
    evictions: int = 0


class SourceOutputCache:
    """Bounded LRU cache of canonicalized execution outputs."""

    def __init__(self, max_entries: int = 100_000):
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.stats = SourceCacheStatistics()
        self._entries: OrderedDict[tuple, Any] = OrderedDict()

    def get(self, program_key: Hashable, sequence: Hashable) -> Optional[Any]:
        """Cached outputs for (program, sequence), or ``None`` on a miss."""
        key = (program_key, sequence)
        entry = self._entries.get(key, _MISSING)
        if entry is _MISSING:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry

    def put(self, program_key: Hashable, sequence: Hashable, outputs: Any) -> None:
        key = (program_key, sequence)
        self._entries[key] = outputs
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)
