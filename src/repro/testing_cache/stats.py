"""Counters for the incremental-testing subsystem.

The per-component statistics (:class:`PoolStatistics`,
:class:`SourceCacheStatistics`) live next to their component; this module
holds the merged view that the synthesizer surfaces on its result object and
that the eval harness renders.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class TestingCacheStats:
    """Aggregated incremental-testing counters for one synthesis run."""

    #: Candidates rejected by a pool counterexample before full enumeration.
    pool_hits: int = 0
    #: Counterexamples currently retained in the pool.
    pool_size: int = 0
    #: Counterexamples recorded over the run (including later-evicted ones).
    pool_added: int = 0
    #: Candidates screened against the pool.
    candidates_screened: int = 0
    #: Candidates that went through the full ``SequenceGenerator`` enumeration.
    candidates_fully_tested: int = 0
    #: Pool sequences executed while screening.
    screening_sequences: int = 0
    #: Subset of screening sequences executed through the columnar batch
    #: kernels (zero under the scalar backends).
    sequences_screened_batched: int = 0
    #: Largest single batch handed to a screening kernel (high-water mark).
    screening_batch_high_water: int = 0
    #: Wall-clock time spent screening, in seconds.
    screening_time: float = 0.0
    #: Estimated sequences *not* executed thanks to pool hits (pool hits times
    #: the average full-enumeration length observed in this run).
    sequences_saved_estimate: int = 0
    #: Source-output cache hits / entries (shared across testers of the run).
    source_cache_hits: int = 0
    source_cache_entries: int = 0
    source_cache_evictions: int = 0
    #: Compiled-closure cache counters of this run (deltas over the possibly
    #: shared :class:`~repro.engine.compiler.ProgramCompiler`): function
    #: closures served from cache vs actually compiled.  Nonzero hits on a
    #: cold run come from candidates sharing function ASTs; hits above the
    #: cold baseline prove cross-job sharing inside a service batch.
    compiled_function_hits: int = 0
    compiled_function_misses: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of screened candidates killed by the pool."""
        if self.candidates_screened == 0:
            return 0.0
        return self.pool_hits / self.candidates_screened

    def merge(self, other: "TestingCacheStats") -> None:
        """Accumulate counters from a worker run (parallel front-end merge)."""
        self.pool_hits += other.pool_hits
        self.pool_added += other.pool_added
        self.candidates_screened += other.candidates_screened
        self.candidates_fully_tested += other.candidates_fully_tested
        self.screening_sequences += other.screening_sequences
        self.sequences_screened_batched += other.sequences_screened_batched
        self.screening_batch_high_water = max(
            self.screening_batch_high_water, other.screening_batch_high_water
        )
        self.screening_time += other.screening_time
        self.sequences_saved_estimate += other.sequences_saved_estimate
        self.source_cache_hits += other.source_cache_hits
        self.source_cache_entries = max(self.source_cache_entries, other.source_cache_entries)
        self.source_cache_evictions += other.source_cache_evictions
        self.compiled_function_hits += other.compiled_function_hits
        self.compiled_function_misses += other.compiled_function_misses
        self.pool_size = max(self.pool_size, other.pool_size)


def collect_cache_stats(
    tester_stats, pool, source_cache, verifier_stats=None, compiler_delta=None
) -> TestingCacheStats:
    """Assemble the merged view from one tester's components.

    ``tester_stats`` is a ``TesterStatistics``; *pool* and *source_cache* may
    be ``None`` when the corresponding feature is disabled.  When the
    verifier shares the source cache, its ``VerifierStatistics`` contributes
    its hits to the merged ``source_cache_hits`` counter.  *compiler_delta*
    is this run's share of a (possibly shared) program compiler's
    :class:`~repro.engine.compiler.CompilerStats`.
    """
    source_cache_hits = tester_stats.source_cache_hits
    if verifier_stats is not None:
        source_cache_hits += verifier_stats.source_cache_hits
    stats = TestingCacheStats(
        candidates_fully_tested=tester_stats.full_enumerations,
        source_cache_hits=source_cache_hits,
    )
    if compiler_delta is not None:
        stats.compiled_function_hits = compiler_delta.function_hits
        stats.compiled_function_misses = compiler_delta.function_misses
    if source_cache is not None:
        stats.source_cache_entries = len(source_cache)
        stats.source_cache_evictions = source_cache.stats.evictions
    if pool is not None:
        stats.pool_hits = pool.stats.hits
        stats.pool_size = len(pool)
        stats.pool_added = pool.stats.added
        stats.candidates_screened = pool.stats.candidates_screened
        stats.screening_sequences = pool.stats.sequences_screened
        stats.sequences_screened_batched = pool.stats.sequences_screened_batched
        stats.screening_batch_high_water = pool.stats.max_batch_size
        stats.screening_time = pool.stats.screening_time
        if tester_stats.full_enumerations:
            average = (
                tester_stats.full_enumeration_sequences / tester_stats.full_enumerations
            )
            stats.sequences_saved_estimate = int(pool.stats.hits * average)
    return stats
