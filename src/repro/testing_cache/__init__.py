"""Incremental testing: cross-sketch counterexample reuse + shared caches.

See EXPERIMENTS.md ("Incremental testing") for the design rationale and the
configuration knobs, and ``benchmarks/bench_cache.py`` for the measured
effect on the Table 1 workloads.
"""

from repro.testing_cache.pool import CounterexamplePool, PoolStatistics
from repro.testing_cache.source_cache import SourceCacheStatistics, SourceOutputCache
from repro.testing_cache.stats import TestingCacheStats, collect_cache_stats

__all__ = [
    "CounterexamplePool",
    "PoolStatistics",
    "SourceCacheStatistics",
    "SourceOutputCache",
    "TestingCacheStats",
    "collect_cache_stats",
]
