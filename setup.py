"""Setup shim.

The project is declared in ``pyproject.toml``; this file only exists so that
``pip install -e .`` also works in offline environments that lack the
``wheel`` package required for PEP 517 editable installs.
"""

from setuptools import setup

setup()
