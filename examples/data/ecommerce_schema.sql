-- E-commerce schema dump (MySQL-flavoured tables, pg_dump-style ALTERs).
-- Bundled as the realistic ingest target for examples/corpus_ingest.py and
-- tests/test_corpus_ddl.py: exercises type coarsening (NUMERIC -> INT,
-- TIMESTAMP -> STRING), quoted identifiers, skipped statements, inline and
-- ALTER-declared foreign keys, and index/constraint noise.

SET NAMES utf8mb4;
SET time_zone = '+00:00';

CREATE TABLE `customers` (
  `customer_id` INT NOT NULL AUTO_INCREMENT,
  `email` VARCHAR(255) NOT NULL UNIQUE,
  `full_name` VARCHAR(120) NOT NULL,
  `avatar` BLOB,
  `is_verified` BOOLEAN NOT NULL DEFAULT 0,
  `created_at` TIMESTAMP NOT NULL DEFAULT CURRENT_TIMESTAMP,
  PRIMARY KEY (`customer_id`)
) ENGINE=InnoDB DEFAULT CHARSET=utf8mb4;

CREATE TABLE `products` (
  `product_id` INT NOT NULL AUTO_INCREMENT,
  `sku` VARCHAR(64) NOT NULL,
  `title` VARCHAR(255) NOT NULL,
  `description` TEXT,
  `price_cents` NUMERIC(10, 2) NOT NULL,
  `active` BOOLEAN NOT NULL DEFAULT 1,
  PRIMARY KEY (`product_id`),
  UNIQUE KEY `uniq_sku` (`sku`)
) ENGINE=InnoDB;

CREATE TABLE `orders` (
  `order_id` INT NOT NULL AUTO_INCREMENT,
  `customer_id` INT NOT NULL,
  `status` ENUM('new', 'paid', 'shipped', 'cancelled') NOT NULL DEFAULT 'new',
  `placed_at` DATETIME NOT NULL,
  PRIMARY KEY (`order_id`),
  FOREIGN KEY (`customer_id`) REFERENCES `customers` (`customer_id`) ON DELETE CASCADE
) ENGINE=InnoDB;

CREATE TABLE "order_items" (
  "order_item_id" INTEGER PRIMARY KEY,
  "order_id" INTEGER NOT NULL REFERENCES "orders" ("order_id"),
  "product_id" INTEGER NOT NULL,
  "quantity" INTEGER NOT NULL CHECK (quantity > 0),
  "unit_price_cents" NUMERIC(10, 2) NOT NULL,
  UNIQUE ("order_id", "product_id")
);

CREATE TABLE payments (
    payment_id BIGSERIAL,
    order_id INTEGER NOT NULL,
    amount_cents MONEY NOT NULL,
    method CHARACTER VARYING(32) NOT NULL,
    captured BOOLEAN NOT NULL DEFAULT FALSE,
    captured_at TIMESTAMP WITH TIME ZONE
);

/* Indexes and grants carry no schema information and are skipped. */
CREATE INDEX idx_orders_customer ON orders (customer_id);
CREATE INDEX idx_items_product ON order_items (product_id);

ALTER TABLE ONLY payments
    ADD CONSTRAINT payments_pkey PRIMARY KEY (payment_id);

ALTER TABLE ONLY payments
    ADD CONSTRAINT payments_order_fk FOREIGN KEY (order_id)
    REFERENCES orders (order_id) ON DELETE NO ACTION;

ALTER TABLE ONLY order_items
    ADD CONSTRAINT items_product_fk FOREIGN KEY (product_id)
    REFERENCES products (product_id);
