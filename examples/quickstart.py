"""Quickstart: migrate a tiny blog program to a refactored schema.

Defines a two-table blog schema, a handful of transactions over it, a target
schema in which the post bodies are split into their own table, and asks the
synthesizer for the migrated program.

Run with::

    python examples/quickstart.py
"""

from repro import DataType as T, SynthesisConfig, format_program, make_schema, migrate
from repro.lang.builder import ProgramBuilder, delete, eq, insert, select, update


def build_source_program():
    schema = make_schema(
        "blog_v1",
        {
            "users": {"user_id": T.INT, "user_name": T.STRING, "email": T.STRING},
            "posts": {"post_id": T.INT, "user_id": T.INT, "title": T.STRING, "body": T.STRING},
        },
        foreign_keys=[("posts.user_id", "users.user_id")],
    )
    pb = ProgramBuilder("blog", schema)
    pb.update("addUser", [("user_id", "int"), ("name", "str"), ("email", "str")],
              insert("users", {"users.user_id": "$user_id", "users.user_name": "$name",
                               "users.email": "$email"}))
    pb.update("addPost", [("post_id", "int"), ("user_id", "int"), ("title", "str"), ("body", "str")],
              insert("posts", {"posts.post_id": "$post_id", "posts.user_id": "$user_id",
                               "posts.title": "$title", "posts.body": "$body"}))
    pb.update("deletePost", [("post_id", "int")],
              delete("posts", "posts", eq("posts.post_id", "$post_id")))
    pb.query("getPost", [("post_id", "int")],
             select(["posts.title", "posts.body"], "posts", eq("posts.post_id", "$post_id")))
    pb.query("getUserEmail", [("user_id", "int")],
             select(["users.email"], "users", eq("users.user_id", "$user_id")))
    pb.update("updateTitle", [("post_id", "int"), ("title", "str")],
              update("posts", eq("posts.post_id", "$post_id"), "posts.title", "$title"))
    return pb.build()


def build_target_schema():
    # Refactoring: post bodies move into their own table, linked by a fresh id.
    return make_schema(
        "blog_v2",
        {
            "users": {"user_id": T.INT, "user_name": T.STRING, "email": T.STRING},
            "posts": {"post_id": T.INT, "user_id": T.INT, "title": T.STRING, "content_id": T.INT},
            "post_contents": {"content_id": T.INT, "body": T.STRING},
        },
        foreign_keys=[
            ("posts.user_id", "users.user_id"),
            ("posts.content_id", "post_contents.content_id"),
        ],
    )


def main() -> None:
    source = build_source_program()
    target_schema = build_target_schema()

    print("Source program:")
    print(format_program(source))
    print()
    print("Target schema:")
    print(target_schema.describe())
    print()

    config = SynthesisConfig()
    config.verifier_random_sequences = 100
    result = migrate(source, target_schema, config)

    print(result.summary())
    if result.succeeded:
        print()
        print("Inferred value correspondence (non-identity entries):")
        print(result.correspondence.describe() or "  (identity)")
        print()
        print("Synthesized program over the new schema:")
        print(format_program(result.program))
    else:
        print("Synthesis failed; attempts:")
        for attempt in result.attempts:
            print(" ", attempt)


if __name__ == "__main__":
    main()
