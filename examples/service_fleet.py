"""Batch migration over a remote-worker fleet (distributed execution).

The same production scenario as examples/service_batch.py — one application
migrated toward several candidate target schemas — but the jobs execute on
**remote worker processes** (``python -m repro.worker``) instead of the
in-process pool.  The service talks to them over the socket transport with
unchanged semantics: typed events stream back live, a job store journals
which worker holds which lease, and a worker that dies mid-job is survived
(its lease expires and the job is re-run elsewhere).

Here the workers are two local subprocesses; pointing the same
``--connect HOST:PORT`` at other machines is the multi-host deployment.

Run with::

    python examples/service_fleet.py
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
from pathlib import Path

from repro import SynthesisConfig
from repro.api import MigrationJob, MigrationService, RemoteFleet, Solved, VcSelected
from repro.eval.reporting import render_service_report
from repro.workloads import get_benchmark, rename_variants

ROOT = Path(__file__).resolve().parents[1]


def candidate_targets(benchmark, variants: int = 3):
    """The benchmark's planned target schema plus rename variants of it."""
    return [benchmark.target_schema] + rename_variants(
        benchmark.target_schema, variants, base_name="coachup_v2"
    )


def on_event(job_name: str, event) -> None:
    """Real-time progress, streamed across the socket from the workers."""
    if isinstance(event, VcSelected):
        print(f"  [{job_name}] trying correspondence #{event.index} (weight {event.weight})")
    elif isinstance(event, Solved):
        print(f"  [{job_name}] solved after {event.iterations} completion iteration(s)")


def spawn_workers(fleet: RemoteFleet, count: int) -> list[subprocess.Popen]:
    """Launch *count* local ``repro.worker`` processes dialing the fleet."""
    env = {"PYTHONPATH": str(ROOT / "src")}
    return [
        subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.worker",
                "--connect",
                fleet.bound_address,
                "--id",
                f"example-w{index}",
            ],
            env=env,
        )
        for index in range(count)
    ]


def main() -> None:
    benchmark = get_benchmark("coachup")
    config = SynthesisConfig()
    config.verifier_random_sequences = 25

    jobs = [
        MigrationJob(f"coachup->{target.name}", benchmark.source_program, target, config)
        for target in candidate_targets(benchmark)
    ]

    store = str(Path(tempfile.mkdtemp(prefix="repro-fleet-")) / "batch.jsonl")
    fleet = RemoteFleet(listen="127.0.0.1:0", min_workers=2)
    workers = spawn_workers(fleet, 2)
    print(f"Coordinator listening on {fleet.bound_address}; 2 workers dialing in.")
    try:
        fleet.ensure_started()
        print(f"Fleet up with {fleet.worker_count} worker(s).")
        print(f"Submitting {len(jobs)} migration jobs for {benchmark.name!r}:")

        with MigrationService(workers=fleet, job_store=store, on_event=on_event) as service:
            handles = service.submit_batch(jobs)
            service.run()

        print()
        responses = [handle.to_dict(include_program=False) for handle in handles]
        print(render_service_report(responses, title="Migration service batch (remote fleet)"))

        print()
        print("Lease journal (which worker ran which job):")
        with open(store, "r", encoding="utf-8") as journal:
            for line in journal:
                record = json.loads(line)
                if record.get("type") in ("leased", "released"):
                    detail = record.get("outcome", f"expires {record.get('expiry', 0):.0f}")
                    print(f"  {record['type']:<9} {record['job']:<24} {record['worker']} ({detail})")
    finally:
        fleet.close()
        for worker in workers:
            if worker.poll() is None:
                worker.kill()
            worker.wait(timeout=10)


if __name__ == "__main__":
    main()
