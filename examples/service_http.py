"""A minimal HTTP/JSON front over the MigrationService (stdlib only).

``JobHandle.to_dict()`` payloads are already wire-ready, so a service
deployment needs nothing more than a thin JSON route layer:

* ``POST /jobs``                — submit a batch ``{"benchmark": name,
  "variants": N, "priority": P, "deadline": seconds}`` (the benchmark's
  planned target schema plus N column-rename variants); returns the job
  names and starts the batch in the background;
* ``GET /jobs``                 — all job responses;
* ``GET /jobs/<name>``          — one job response (status, error, result);
* ``POST /jobs/<name>/cancel``  — request cooperative cancellation.

The demo below starts the server on an ephemeral port, drives it with
stdlib ``urllib`` exactly like an external client would — submit, poll
until the batch settles, cancel a job — and shuts down.  Run with::

    python examples/service_http.py
"""

from __future__ import annotations

import json
import threading
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro import SynthesisConfig
from repro.api import JobStatus, MigrationJob, MigrationService
from repro.eval.reporting import render_service_report
from repro.workloads import get_benchmark, rename_variants


class MigrationHTTPService:
    """The service facade plus the route handlers (one instance per server)."""

    def __init__(self) -> None:
        self.service = MigrationService()
        self._lock = threading.Lock()
        self._handles: dict[str, object] = {}
        self._runner: threading.Thread | None = None

    # ----------------------------------------------------------------- routes
    def submit(self, payload: dict) -> dict:
        benchmark = get_benchmark(payload.get("benchmark", "coachup"))
        variants = int(payload.get("variants", 0))
        config = SynthesisConfig()
        config.verifier_random_sequences = int(payload.get("verifier_random_sequences", 25))
        targets = [benchmark.target_schema]
        targets.extend(
            rename_variants(benchmark.target_schema, variants, base_name=f"{benchmark.name}_v2")
        )
        jobs = [
            MigrationJob(
                f"{benchmark.name}->{target.name}",
                benchmark.source_program,
                target,
                config,
                priority=int(payload.get("priority", 0)),
                deadline=payload.get("deadline"),
            )
            for target in targets
        ]
        with self._lock:
            handles = self.service.submit_batch(jobs)
            for handle in handles:
                self._handles[handle.job.name] = handle
            # One background runner loops until no job is left pending, so
            # submissions that arrive while a batch is running are picked up
            # by the same runner's next iteration.
            if self._runner is None or not self._runner.is_alive():
                self._runner = threading.Thread(target=self._run_batches, daemon=True)
                self._runner.start()
        return {"submitted": [handle.job.name for handle in handles]}

    def _run_batches(self) -> None:
        while True:
            self.service.run()
            with self._lock:
                if not any(
                    handle.status is JobStatus.PENDING
                    for handle in self.service.handles
                ):
                    self._runner = None
                    return

    def job_response(self, name: str) -> dict | None:
        handle = self._handles.get(name)
        if handle is None:
            return None
        return handle.to_dict(include_program=False)

    def all_responses(self) -> list[dict]:
        return [handle.to_dict(include_program=False) for handle in self._handles.values()]

    def cancel(self, name: str) -> dict | None:
        handle = self._handles.get(name)
        if handle is None:
            return None
        handle.cancel()
        return {"job": name, "cancel_requested": True}


def make_handler(front: MigrationHTTPService):
    class Handler(BaseHTTPRequestHandler):
        def log_message(self, *_args) -> None:  # keep the demo output clean
            pass

        def _send(self, status: int, payload) -> None:
            body = json.dumps(payload).encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def do_GET(self) -> None:
            parts = [p for p in self.path.split("/") if p]
            if parts == ["jobs"]:
                self._send(200, front.all_responses())
            elif len(parts) == 2 and parts[0] == "jobs":
                response = front.job_response(parts[1])
                self._send(200, response) if response else self._send(
                    404, {"error": f"unknown job {parts[1]!r}"}
                )
            else:
                self._send(404, {"error": "unknown route"})

        def do_POST(self) -> None:
            parts = [p for p in self.path.split("/") if p]
            length = int(self.headers.get("Content-Length", 0))
            payload = json.loads(self.rfile.read(length) or b"{}")
            if parts == ["jobs"]:
                self._send(202, front.submit(payload))
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "cancel":
                response = front.cancel(parts[1])
                self._send(202, response) if response else self._send(
                    404, {"error": f"unknown job {parts[1]!r}"}
                )
            else:
                self._send(404, {"error": "unknown route"})

    return Handler


# ------------------------------------------------------------------ the demo
def _request(url: str, payload: dict | None = None):
    data = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read())


def main() -> None:
    front = MigrationHTTPService()
    server = ThreadingHTTPServer(("127.0.0.1", 0), make_handler(front))
    base = f"http://127.0.0.1:{server.server_port}"
    server_thread = threading.Thread(target=server.serve_forever, daemon=True)
    server_thread.start()
    print(f"migration service listening on {base}")

    try:
        submitted = _request(f"{base}/jobs", {"benchmark": "coachup", "variants": 2})
        names = submitted["submitted"]
        print(f"submitted {len(names)} jobs: {', '.join(names)}")

        # Ask the server to cancel the last job while the batch runs.
        print(_request(f"{base}/jobs/{names[-1]}/cancel", {}))

        import time

        while True:
            responses = _request(f"{base}/jobs")
            if all(r["status"] not in ("pending", "running") for r in responses):
                break
            time.sleep(0.1)

        print()
        print(render_service_report(responses, title="Jobs via HTTP front"))
        one = _request(f"{base}/jobs/{names[0]}")
        print()
        print("Single-job response (truncated):")
        print(json.dumps(one, indent=2)[:500], "...")
    finally:
        server.shutdown()
        server_thread.join(timeout=5)


if __name__ == "__main__":
    main()
