"""A minimal HTTP/JSON front over the MigrationService (stdlib only).

``JobHandle.to_dict()`` payloads are already wire-ready, so a service
deployment needs nothing more than a thin JSON route layer:

* ``POST /jobs``                — submit a batch ``{"benchmark": name,
  "variants": N, "priority": P, "deadline": seconds, "defer": bool}`` (the
  benchmark's planned target schema plus N column-rename variants); returns
  the job names and starts the batch in the background.  ``"defer": true``
  records the submissions store-only via ``MigrationService.submit_deferred``
  (so not even a runner already mid-batch can pick them up) — the pattern
  for producers that enqueue work for a later ``/resume`` or a later front,
  and the way the demo below simulates an interruption;
* ``GET /jobs``                 — all job responses;
* ``GET /jobs/<name>``          — one job response (status, error, result);
* ``POST /jobs/<name>/cancel``  — request cooperative cancellation;
* ``POST /resume``              — finish the unfinished: start every job the
  store says was submitted (or interrupted mid-run) but never settled.

Every front is backed by a persistent JSONL job store
(:class:`repro.api.JobStore`), so a killed server loses nothing: start a new
front on the same store path and ``POST /resume`` — settled jobs come back
as recorded responses, unfinished ones are rerun.

The demo below starts the server on an ephemeral port, drives it with
stdlib ``urllib`` exactly like an external client would — submit, poll
until the batch settles, cancel a job, then *simulate a crash* (deferred
jobs + a fresh front on the same store) and resume — and shuts down.  Run
with::

    python examples/service_http.py
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro import SynthesisConfig
from repro.api import JobStatus, MigrationJob, MigrationService
from repro.eval.reporting import render_service_report
from repro.workloads import get_benchmark, rename_variants


class MigrationHTTPService:
    """The service facade plus the route handlers (one instance per server)."""

    def __init__(self, store_path: str) -> None:
        self.store_path = store_path
        if os.path.exists(store_path):
            # A previous front wrote this store: adopt its history — settled
            # jobs as recorded responses, unfinished jobs ready for /resume.
            self.service = MigrationService.resume(store_path)
        else:
            self.service = MigrationService(job_store=store_path)
        self._lock = threading.Lock()
        self._handles: dict[str, object] = {
            handle.job.name: handle for handle in self.service.handles
        }
        self._runner: threading.Thread | None = None

    # ----------------------------------------------------------------- routes
    def submit(self, payload: dict) -> dict:
        benchmark = get_benchmark(payload.get("benchmark", "coachup"))
        variants = int(payload.get("variants", 0))
        config = SynthesisConfig()
        config.verifier_random_sequences = int(payload.get("verifier_random_sequences", 25))
        targets = [benchmark.target_schema]
        targets.extend(
            rename_variants(benchmark.target_schema, variants, base_name=f"{benchmark.name}_v2")
        )
        jobs = [
            MigrationJob(
                f"{benchmark.name}->{target.name}",
                benchmark.source_program,
                target,
                config,
                priority=int(payload.get("priority", 0)),
                deadline=payload.get("deadline"),
            )
            for target in targets
        ]
        if payload.get("defer"):
            # Record-only: the jobs reach the store (for a later /resume or
            # a fresh front) without entering the live batch — so a runner
            # already mid-batch cannot pick them up before the caller
            # intended.
            for job in jobs:
                self.service.submit_deferred(job)
            return {"submitted": [job.name for job in jobs], "deferred": True}
        with self._lock:
            handles = self.service.submit_batch(jobs)
            for handle in handles:
                self._handles[handle.job.name] = handle
            self._ensure_runner_locked()
        return {"submitted": [handle.job.name for handle in handles], "deferred": False}

    def resume(self) -> dict:
        """Start every submitted-but-unsettled job (after a restart, or
        deferred submissions recorded earlier)."""
        with self._lock:
            for handle in self.service.adopt_unfinished():
                self._handles[handle.job.name] = handle
            pending = [
                handle.job.name
                for handle in self.service.handles
                if handle.status is JobStatus.PENDING
            ]
            if pending:
                self._ensure_runner_locked()
        return {"resumed": pending}

    def _ensure_runner_locked(self) -> None:
        # One background runner loops until no job is left pending, so
        # submissions that arrive while a batch is running are picked up
        # by the same runner's next iteration.
        if self._runner is None or not self._runner.is_alive():
            self._runner = threading.Thread(target=self._run_batches, daemon=True)
            self._runner.start()

    def _run_batches(self) -> None:
        while True:
            self.service.run()
            with self._lock:
                if not any(
                    handle.status is JobStatus.PENDING
                    for handle in self.service.handles
                ):
                    self._runner = None
                    return

    def job_response(self, name: str) -> dict | None:
        handle = self._handles.get(name)
        if handle is None:
            return None
        return handle.to_dict(include_program=False)

    def all_responses(self) -> list[dict]:
        return [handle.to_dict(include_program=False) for handle in self._handles.values()]

    def cancel(self, name: str) -> dict | None:
        handle = self._handles.get(name)
        if handle is None:
            return None
        handle.cancel()
        return {"job": name, "cancel_requested": True}


def make_handler(front: MigrationHTTPService):
    class Handler(BaseHTTPRequestHandler):
        def log_message(self, *_args) -> None:  # keep the demo output clean
            pass

        def _send(self, status: int, payload) -> None:
            body = json.dumps(payload).encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def do_GET(self) -> None:
            parts = [p for p in self.path.split("/") if p]
            if parts == ["jobs"]:
                self._send(200, front.all_responses())
            elif len(parts) == 2 and parts[0] == "jobs":
                response = front.job_response(parts[1])
                self._send(200, response) if response else self._send(
                    404, {"error": f"unknown job {parts[1]!r}"}
                )
            else:
                self._send(404, {"error": "unknown route"})

        def do_POST(self) -> None:
            parts = [p for p in self.path.split("/") if p]
            length = int(self.headers.get("Content-Length", 0))
            payload = json.loads(self.rfile.read(length) or b"{}")
            if parts == ["jobs"]:
                self._send(202, front.submit(payload))
            elif parts == ["resume"]:
                self._send(202, front.resume())
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "cancel":
                response = front.cancel(parts[1])
                self._send(202, response) if response else self._send(
                    404, {"error": f"unknown job {parts[1]!r}"}
                )
            else:
                self._send(404, {"error": "unknown route"})

    return Handler


# ------------------------------------------------------------------ the demo
def _request(url: str, payload: dict | None = None):
    data = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read())


def _serve(store_path: str):
    front = MigrationHTTPService(store_path)
    server = ThreadingHTTPServer(("127.0.0.1", 0), make_handler(front))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread, f"http://127.0.0.1:{server.server_port}"


def _poll_until_settled(base: str) -> list[dict]:
    import time

    while True:
        responses = _request(f"{base}/jobs")
        if all(r["status"] not in ("pending", "running") for r in responses):
            return responses
        time.sleep(0.1)


def main() -> None:
    store_path = os.path.join(tempfile.mkdtemp(prefix="repro-jobs-"), "jobs.jsonl")

    # ---- generation 1: submit, poll, cancel — and leave deferred work behind
    server, server_thread, base = _serve(store_path)
    print(f"migration service listening on {base} (store: {store_path})")
    try:
        submitted = _request(f"{base}/jobs", {"benchmark": "coachup", "variants": 2})
        names = submitted["submitted"]
        print(f"submitted {len(names)} jobs: {', '.join(names)}")

        # Ask the server to cancel the last job while the batch runs.
        print(_request(f"{base}/jobs/{names[-1]}/cancel", {}))

        responses = _poll_until_settled(base)

        # Enqueue one more job WITHOUT running it: when the server dies
        # before draining it, this is exactly what an interrupted batch
        # looks like in the store.
        deferred = _request(f"{base}/jobs", {"benchmark": "Oracle-1", "defer": True})
        print(f"deferred (recorded, not started): {deferred['submitted']}")
        print()
        print(render_service_report(responses, title="Jobs via HTTP front (generation 1)"))
    finally:
        server.shutdown()
        server_thread.join(timeout=5)
    print("\nserver killed with 1 job still pending; restarting on the same store...\n")

    # ---- generation 2: a fresh front on the same store resumes the batch
    server, server_thread, base = _serve(store_path)
    try:
        resumed = _request(f"{base}/resume", {})
        print(f"resumed jobs: {resumed['resumed']}")
        responses = _poll_until_settled(base)
        print()
        print(render_service_report(responses, title="Jobs via HTTP front (after resume)"))
        one = _request(f"{base}/jobs/{resumed['resumed'][0]}")
        print()
        print("Resumed-job response (truncated):")
        print(json.dumps(one, indent=2)[:500], "...")
    finally:
        server.shutdown()
        server_thread.join(timeout=5)


if __name__ == "__main__":
    main()
