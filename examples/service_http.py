"""Driving the ``repro.server`` service front as a plain HTTP client.

Since API v2.3.0 the HTTP front is part of the library
(:mod:`repro.server`): an asyncio multi-tenant server with per-tenant
quotas, weighted fair scheduling, SSE event streaming, and a durable job
store (JSONL or indexed SQLite).  This example is therefore a *client*: it
boots a server in-process (:class:`~repro.server.ServerThread` — exactly
what ``python -m repro.server`` wraps) and then speaks nothing but HTTP
and SSE to it, the way an external consumer would:

* ``POST /jobs``                — submit a batch (authenticated, quota-gated);
* ``GET  /jobs/{name}/events``  — stream the typed session events as SSE,
  and resume the stream gap-free with ``Last-Event-ID``;
* ``POST /jobs/{name}/cancel``  — cooperative cancellation;
* ``GET  /jobs``                — the tenant's job responses;
* kill the server mid-batch, boot a fresh one on the same store, and watch
  the interrupted batch finish (``POST /resume`` adopts deferred records;
  interrupted-mid-run jobs are re-pinned and rerun at boot).

Run with::

    python examples/service_http.py
"""

from __future__ import annotations

import json
import os
import tempfile
import time
import urllib.error
import urllib.request

from repro.eval.reporting import render_service_report
from repro.server import ServerThread, ServiceFront, Tenant, TenantQuota, TenantRegistry

API_KEY = "k-demo"
CONFIG = {"verifier_random_sequences": 25}


def _registry() -> TenantRegistry:
    return TenantRegistry(
        [
            Tenant(
                name="demo",
                api_key=API_KEY,
                weight=2,
                quota=TenantQuota(max_queued=16, max_running=4, submit_rate=0.0),
            )
        ]
    )


def _request(base: str, path: str, payload: dict | None = None):
    data = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(
        base + path, data=data, headers={"X-API-Key": API_KEY}
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _stream_events(base: str, name: str, *, after: int = 0) -> list[tuple[int, str]]:
    """Consume one SSE stream to its ``job_settled`` end; (id, kind) pairs."""
    request = urllib.request.Request(
        f"{base}/jobs/{name}/events",
        headers={"X-API-Key": API_KEY, "Last-Event-ID": str(after)},
    )
    frames: list[tuple[int, str]] = []
    with urllib.request.urlopen(request, timeout=120) as response:
        event_id, kind = 0, ""
        for raw in response:
            line = raw.decode("utf-8").rstrip("\n")
            if line.startswith("id: "):
                event_id = int(line[4:])
            elif line.startswith("event: "):
                kind = line[7:]
            elif not line and kind:
                frames.append((event_id, kind))
                if kind == "job_settled":
                    return frames
                kind = ""
    return frames


def _poll_until_settled(base: str) -> list[dict]:
    while True:
        _, responses = _request(base, "/jobs")
        if responses and all(
            r["status"] not in ("pending", "running") for r in responses
        ):
            return responses
        time.sleep(0.1)


def _serve(store: str) -> tuple[ServerThread, str]:
    server = ServerThread(ServiceFront(store, tenants=_registry())).start()
    return server, "http://%s:%d" % server.address


def main() -> None:
    store = "sqlite:" + os.path.join(tempfile.mkdtemp(prefix="repro-srv-"), "jobs.db")

    # ---- generation 1: submit, stream, cancel — leave deferred work behind
    server, base = _serve(store)
    print(f"service front listening on {base} (store: {store})")
    try:
        status, submitted = _request(
            base, "/jobs", {"benchmark": "coachup", "variants": 2, "config": CONFIG}
        )
        names = submitted["submitted"]
        print(f"submitted {len(names)} jobs (priorities {submitted['priorities']})")

        # Cancel the last job while the batch runs.
        print(_request(base, f"/jobs/{names[-1]}/cancel", {})[1])

        # Live-stream the first job's typed events to its terminal frame...
        frames = _stream_events(base, names[0])
        kinds = [kind for _id, kind in frames]
        print(f"SSE stream of {names[0]}: {' -> '.join(kinds)}")
        # ...then prove Last-Event-ID resume: reconnecting after the second
        # id replays exactly the rest, no gaps, no duplicates.
        resumed_frames = _stream_events(base, names[0], after=frames[1][0])
        assert [f for f in resumed_frames] == frames[2:], (resumed_frames, frames)
        print(f"reconnect after id {frames[1][0]} replayed {len(resumed_frames)} frames")

        responses = _poll_until_settled(base)

        # Enqueue one more job WITHOUT running it: a deferred record is what
        # an interrupted submission looks like in the store.
        _, deferred = _request(
            base, "/jobs", {"benchmark": "Oracle-1", "defer": True, "config": CONFIG}
        )
        deferred_name = deferred["submitted"][0]
        print(f"deferred (recorded, not started): {deferred['submitted']}")
        print()
        print(render_service_report(responses, title="Jobs via service front (generation 1)"))
    finally:
        server.stop()
    print("\nserver stopped with deferred work in the store; restarting...\n")

    # ---- generation 2: fresh front, same store — resume finishes the batch
    server, base = _serve(store)
    try:
        # Boot already re-pinned the store's unfinished records and queued
        # them (settled jobs come back verbatim); POST /resume is for records
        # appended by external writers while the server runs, so it finds
        # nothing left to adopt here.
        _, resumed = _request(base, "/resume", {})
        print(f"POST /resume after boot-time adoption: {resumed['resumed']}")
        responses = _poll_until_settled(base)
        print()
        print(render_service_report(responses, title="Jobs via service front (after resume)"))
        _, one = _request(base, f"/jobs/{deferred_name}")
        assert one["status"] not in ("pending", "running"), one
        print()
        print(f"Deferred job {deferred_name!r} finished after restart (truncated):")
        print(json.dumps(one, indent=2)[:500], "...")
    finally:
        server.stop()


if __name__ == "__main__":
    main()
