"""The paper's running example (Section 2), end to end and stage by stage.

The course-management program of Figure 2 stores instructor and TA pictures
inline; the refactored schema moves them into a dedicated ``Picture`` table.
This example walks through the three pipeline stages explicitly — value
correspondence enumeration, sketch generation, sketch completion — and prints
the same artefacts the paper shows (the candidate correspondence, the sketch
hole structure and its 164,025-program search space, and the final program of
Figure 4).

Run with::

    python examples/picture_refactoring.py
"""

from repro import DataType as T, format_program, make_schema
from repro.completion import SketchCompleter
from repro.correspondence import ValueCorrespondenceEnumerator
from repro.equivalence import BoundedTester, BoundedVerifier, format_sequence
from repro.lang.builder import ProgramBuilder, delete, eq, insert, select
from repro.sketchgen import SketchGenerator


def build_source():
    schema = make_schema(
        "course_v1",
        {
            "Class": {"ClassId": T.INT, "InstId": T.INT, "TaId": T.INT},
            "Instructor": {"InstId": T.INT, "IName": T.STRING, "IPic": T.BINARY},
            "TA": {"TaId": T.INT, "TName": T.STRING, "TPic": T.BINARY},
        },
    )
    pb = ProgramBuilder("course", schema)
    pb.update("addInstructor", [("id", "int"), ("name", "str"), ("pic", "binary")],
              insert("Instructor", {"Instructor.InstId": "$id", "Instructor.IName": "$name",
                                    "Instructor.IPic": "$pic"}))
    pb.update("deleteInstructor", [("id", "int")],
              delete("Instructor", "Instructor", eq("Instructor.InstId", "$id")))
    pb.query("getInstructorInfo", [("id", "int")],
             select(["Instructor.IName", "Instructor.IPic"], "Instructor",
                    eq("Instructor.InstId", "$id")))
    pb.update("addTA", [("id", "int"), ("name", "str"), ("pic", "binary")],
              insert("TA", {"TA.TaId": "$id", "TA.TName": "$name", "TA.TPic": "$pic"}))
    pb.update("deleteTA", [("id", "int")],
              delete("TA", "TA", eq("TA.TaId", "$id")))
    pb.query("getTAInfo", [("id", "int")],
             select(["TA.TName", "TA.TPic"], "TA", eq("TA.TaId", "$id")))
    return pb.build()


def build_target_schema():
    return make_schema(
        "course_v2",
        {
            "Class": {"ClassId": T.INT, "InstId": T.INT, "TaId": T.INT},
            "Instructor": {"InstId": T.INT, "IName": T.STRING, "PicId": T.INT},
            "TA": {"TaId": T.INT, "TName": T.STRING, "PicId": T.INT},
            "Picture": {"PicId": T.INT, "Pic": T.BINARY},
        },
    )


def main() -> None:
    source = build_source()
    target_schema = build_target_schema()

    print("=== Stage 0: the problem ===")
    print("Source schema:\n" + source.schema.describe())
    print("\nTarget schema:\n" + target_schema.describe())

    print("\n=== Stage 1: value correspondence enumeration (Section 4.2) ===")
    enumerator = ValueCorrespondenceEnumerator(source, target_schema)
    candidate = enumerator.next_value_corr()
    print(f"first candidate (objective weight {candidate.weight}):")
    print(candidate.correspondence.describe() or "  (identity)")

    print("\n=== Stage 2: sketch generation (Section 4.3) ===")
    generator = SketchGenerator(source, target_schema)
    sketch = generator.generate(candidate.correspondence)
    print(sketch.describe())

    print("\n=== Stage 3: sketch completion with MFI learning (Section 4.4) ===")
    tester = BoundedTester(source)
    completer = SketchCompleter(
        source, tester=tester, verifier=BoundedVerifier(random_sequences=100)
    )
    result = completer.complete(sketch)
    stats = result.statistics
    print(f"iterations: {stats.iterations}")
    if stats.mfi_lengths:
        print(f"minimum failing input lengths observed: {sorted(set(stats.mfi_lengths))}")
        print(f"completions pruned by blocking clauses (estimate): {stats.eliminated_estimate}")

    print("\n=== Result: the migrated program (compare Figure 4 of the paper) ===")
    print(format_program(result.program))

    print("\nSanity check on one invocation sequence:")
    from repro.engine import run_invocation_sequence

    sequence = [("addTA", (1, "Tom", "photo-bytes")), ("getTAInfo", (1,))]
    print("  sequence:", format_sequence(tuple(sequence)))
    print("  source  :", run_invocation_sequence(source, sequence))
    print("  migrated:", run_invocation_sequence(result.program, sequence))


if __name__ == "__main__":
    main()
