"""Migrating a generated Rails-style e-commerce application (real-world benchmark).

This example uses the benchmark infrastructure directly: it loads the
``rails-ecomm`` workload (a CRUD-dominated program generated to match the
shape of the paper's real-world benchmarks), migrates it to the refactored
schema (customer addresses split out, two new columns added), and prints the
functions whose implementation actually changed.

Run with::

    python examples/ecommerce_split.py
"""

from repro import SynthesisConfig, Synthesizer
from repro.lang.pretty import format_function
from repro.workloads import get_benchmark


def main() -> None:
    benchmark = get_benchmark("rails-ecomm")
    source = benchmark.source_program

    print(f"benchmark: {benchmark.name} — {benchmark.description}")
    print(f"functions: {benchmark.num_functions}, "
          f"source schema: {benchmark.source_schema.num_tables()} tables / "
          f"{benchmark.source_schema.num_attributes()} attributes, "
          f"target schema: {benchmark.target_schema.num_tables()} tables / "
          f"{benchmark.target_schema.num_attributes()} attributes")

    config = SynthesisConfig()
    config.verifier_random_sequences = 50
    result = Synthesizer(config).synthesize(source, benchmark.target_schema)
    print()
    print(result.summary())
    if not result.succeeded:
        return

    print()
    print("Non-identity value correspondence entries:")
    print(result.correspondence.describe() or "  (identity)")

    print()
    print("Functions whose implementation changed:")
    changed = 0
    for name in source.function_names:
        before = format_function(source.function(name))
        after = format_function(result.program.function(name))
        if before != after:
            changed += 1
            print()
            print(f"--- {name} (source) ---")
            print(before)
            print(f"+++ {name} (migrated) +++")
            print(after)
    print()
    print(f"{changed} of {source.num_functions()} functions required changes; "
          f"the rest carry over unchanged.")


if __name__ == "__main__":
    main()
