"""Batch migration through the MigrationService facade.

The production scenario behind the service API: one application (the
``coachup`` benchmark) is migrated toward several candidate target schemas
at once — the planned refactoring plus column-rename variants of it.  The
service schedules the jobs over shared artifacts (compiled-program caches,
the source-output cache, per-source counterexample pools), streams typed
progress events as the jobs run, and returns JSON-ready responses.

Run with::

    python examples/service_batch.py
"""

from __future__ import annotations

from repro import SynthesisConfig
from repro.api import MigrationJob, MigrationService, Solved, VcSelected
from repro.eval.reporting import render_service_report
from repro.workloads import get_benchmark, rename_variants


def candidate_targets(benchmark, variants: int = 3):
    """The benchmark's planned target schema plus rename variants of it."""
    return [benchmark.target_schema] + rename_variants(
        benchmark.target_schema, variants, base_name="coachup_v2"
    )


def on_event(job_name: str, event) -> None:
    """Real-time progress: one line per selected correspondence / solution."""
    if isinstance(event, VcSelected):
        print(f"  [{job_name}] trying correspondence #{event.index} (weight {event.weight})")
    elif isinstance(event, Solved):
        print(f"  [{job_name}] solved after {event.iterations} completion iteration(s)")


def main() -> None:
    benchmark = get_benchmark("coachup")
    config = SynthesisConfig()
    config.verifier_random_sequences = 25

    jobs = [
        MigrationJob(f"coachup->{target.name}", benchmark.source_program, target, config)
        for target in candidate_targets(benchmark)
    ]
    print(f"Submitting {len(jobs)} migration jobs for {benchmark.name!r}:")

    service = MigrationService(on_event=on_event)
    handles = service.submit_batch(jobs)
    service.run()

    print()
    responses = [handle.to_dict(include_program=False) for handle in handles]
    print(render_service_report(responses))

    print()
    print("First job response (JSON, program omitted):")
    import json

    print(json.dumps(responses[0], indent=2)[:600], "...")


if __name__ == "__main__":
    main()
