"""From a real DDL dump to a verified migration, end to end.

This example drives the corpus subsystem's ingest path: parse the bundled
e-commerce schema dump (``examples/data/ecommerce_schema.sql``) into a
:class:`~repro.datamodel.Schema`, build a CRUD application over it, derive a
split + merge refactoring pair from the schema's own shape, synthesize the
migration onto the refactored schema, and verify the result — both with the
bounded verifier and against the known-good oracle program the refactoring
steps constructed.

Run with::

    python examples/corpus_ingest.py
"""

from pathlib import Path

from repro import SynthesisConfig, Synthesizer
from repro.corpus import derive_refactoring_pair, ingest_ddl
from repro.corpus.generator import crud_program_for_spec
from repro.equivalence import BoundedVerifier
from repro.workloads import SchemaSpec

DUMP = Path(__file__).resolve().parent / "data" / "ecommerce_schema.sql"


def main() -> None:
    # 1. Ingest the dump: real DDL (MySQL + pg_dump styles) onto the
    #    paper's four-type datamodel.
    schema, report = ingest_ddl(DUMP.read_text(), name="ecommerce")
    print(f"ingested {DUMP.name}: {report.summary()}")
    print(schema.describe())
    for fk in schema.foreign_keys:
        print(f"  fk: {fk}")

    # 2. Build the application to migrate: a CRUD program over the ingested
    #    schema (one add/get/delete wave per table, then join queries along
    #    the declared foreign keys).
    spec = SchemaSpec.from_schema(schema)
    source = crud_program_for_spec(spec, "ecommerce", 16)
    print(f"\nsource program: {source.num_functions()} functions over "
          f"{schema.num_tables()} tables")

    # 3. Derive a refactoring pair from the schema's own shape, applying each
    #    step to spec AND program: the rewritten program is the known-good
    #    oracle for the migration.
    steps = derive_refactoring_pair(spec, source)
    current_spec, oracle = spec, source
    for index, step in enumerate(steps, 1):
        current_spec, oracle = step.apply(current_spec, oracle)
        print(f"step {index}: {step.describe()}")
    target_schema = oracle.schema
    print(f"target schema: {target_schema.num_tables()} tables / "
          f"{target_schema.num_attributes()} attributes")

    # 4. Synthesize the migration from the source program alone — the
    #    synthesizer never sees the oracle.
    config = SynthesisConfig()
    config.verifier_random_sequences = 50
    result = Synthesizer(config).synthesize(source, target_schema)
    print(f"\n{result.summary()}")
    if not result.succeeded:
        raise SystemExit(1)

    # 5. Independent check: the synthesized program must be equivalent to
    #    the oracle the refactoring steps constructed.
    verdict = BoundedVerifier(max_updates=2, random_sequences=50).verify(
        oracle, result.program
    )
    print(f"synthesized vs constructed oracle: "
          f"equivalent={verdict.equivalent} "
          f"({verdict.sequences_checked} sequences checked)")
    if not verdict.equivalent:
        raise SystemExit(f"divergence on {verdict.counterexample}")


if __name__ == "__main__":
    main()
