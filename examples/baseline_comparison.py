"""Comparing the three sketch-completion strategies on one benchmark.

Runs the paper's MFI-based completer, the enumerative baseline (Table 3) and
the Sketch-style bounded-model-checking baseline (Table 2) on the Ambler-8
denormalization benchmark and reports iterations and wall-clock time for
each — a miniature version of the paper's Tables 2 and 3.

Run with::

    python examples/baseline_comparison.py
"""

import time

from repro.core import SynthesisConfig, Synthesizer
from repro.workloads import get_benchmark


def run(strategy: str, benchmark, timeout: float) -> dict:
    config = SynthesisConfig()
    config.completion_strategy = strategy
    config.final_verification = False
    config.time_limit = timeout
    config.sketch_time_limit = timeout
    started = time.perf_counter()
    result = Synthesizer(config).synthesize(benchmark.source_program, benchmark.target_schema)
    elapsed = time.perf_counter() - started
    return {
        "strategy": strategy,
        "succeeded": result.succeeded,
        "iterations": result.iterations,
        "time": elapsed,
    }


def main() -> None:
    benchmark = get_benchmark("Ambler-8")
    print(f"benchmark: {benchmark.name} — {benchmark.description} "
          f"({benchmark.num_functions} functions)")
    print()
    rows = [run(strategy, benchmark, timeout=120.0) for strategy in ("mfi", "enumerative", "bmc")]
    print(f"{'strategy':14s} {'status':8s} {'iterations':>10s} {'time (s)':>10s}")
    for row in rows:
        status = "ok" if row["succeeded"] else "timeout"
        print(f"{row['strategy']:14s} {status:8s} {row['iterations']:>10d} {row['time']:>10.1f}")
    print()
    print("The MFI-based completer needs the fewest candidate programs; the")
    print("enumerative baseline explores many more; the monolithic BMC baseline")
    print("spends its time building and solving one large encoding up front.")


if __name__ == "__main__":
    main()
