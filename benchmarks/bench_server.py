"""Service-front benchmark: store-backend A/B under the HTTP server.

The API v2.3 server (:mod:`repro.server`) keeps every admission durable —
a ``POST /jobs`` is a store append before it is anything else — so the job
store backend is on the submit path, and on the query path of every
``GET /jobs``.  This benchmark A/Bs the two backends behind the same
:class:`~repro.server.ServiceFront`:

* **concurrent-submit throughput** — N deferred jobs pushed over HTTP from
  4 client threads (deferred admission isolates the store append + quota +
  stride work from synthesis itself): accepted submissions per second,
  JSONL vs SQLite;
* **query latency** — ``store.query_jobs(tenant=..., status=...)`` against
  the N-job store (exactly the call behind ``GET /jobs?status=…``), in two
  shapes: a *broad* query every row matches (both backends materialize all
  N standings — reported for context, no winner expected) and a
  *selective* query matching nothing (the JSONL backend still replays the
  whole log, the SQLite backend answers from its tenant/status indexes —
  that gap is the point of the indexed backend);
* **time-to-first-SSE-event** — one real (cheap) synthesis job per
  backend, submit → first typed event frame on ``GET /jobs/{n}/events``,
  proving the persist-then-fanout bridge stays live on both stores.

Run with ``PYTHONPATH=src python -m pytest -q -s benchmarks/bench_server.py``;
``REPRO_BENCH_SMOKE=1`` (the CI job) shrinks the flood and asserts only the
directional gates (SQLite queries beat JSONL once the log is long).
"""

from __future__ import annotations

import json
import os
import threading
import time
import urllib.request

from repro.eval.reporting import render_table
from repro.server import ServerThread, ServiceFront, Tenant, TenantQuota, TenantRegistry

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0", "false")

#: Deferred jobs in the submit flood (per backend).
FLOOD = 48 if SMOKE else 200
#: Client threads driving the flood.
CLIENTS = 4
#: query_jobs calls measured against the populated store.
QUERIES = 20 if SMOKE else 50

API_KEY = "k-bench"
CONFIG = {"verifier_random_sequences": 10}


def _registry() -> TenantRegistry:
    return TenantRegistry(
        [
            Tenant(
                name="bench",
                api_key=API_KEY,
                quota=TenantQuota(max_queued=0, max_running=0, submit_rate=0.0),
            )
        ]
    )


def _post(base: str, path: str, payload: dict) -> dict:
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode(),
        headers={"X-API-Key": API_KEY},
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return json.loads(response.read())


def _store_url(tmp_path, backend: str) -> str:
    return f"{backend}:{tmp_path / f'bench.{backend}'}"


def _submit_flood(base: str) -> float:
    """FLOOD deferred submissions from CLIENTS threads; returns wall time."""
    counter = iter(range(FLOOD))
    lock = threading.Lock()

    def drive() -> None:
        while True:
            with lock:
                index = next(counter, None)
            if index is None:
                return
            _post(
                base,
                "/jobs",
                {
                    "benchmark": "Oracle-1",
                    "defer": True,
                    "name_prefix": f"flood-{index}-",
                    "config": CONFIG,
                },
            )

    threads = [threading.Thread(target=drive) for _ in range(CLIENTS)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return time.perf_counter() - started


def _measure_backend(tmp_path, backend: str) -> dict:
    front = ServiceFront(_store_url(tmp_path, backend), tenants=_registry(), fsync=False)
    with ServerThread(front) as server:
        base = "http://%s:%d" % server.address
        submit_wall = _submit_flood(base)
        standings = front.store.load_jobs()
        assert sum(1 for job in standings.values() if job.deferred) == FLOOD

        # The call behind GET /jobs?status=… on the now-long store.  Broad:
        # every row matches, both backends materialize all FLOOD standings.
        started = time.perf_counter()
        for _ in range(QUERIES):
            rows = front.store.query_jobs(tenant="bench", status="pending")
        broad_wall = time.perf_counter() - started
        assert len(rows) == FLOOD
        # Selective: nothing settled yet, so zero rows match — the indexed
        # backend answers from its btrees, JSONL replays the whole log.
        started = time.perf_counter()
        for _ in range(QUERIES):
            rows = front.store.query_jobs(tenant="bench", status="done")
        selective_wall = time.perf_counter() - started
        assert rows == []
    return {
        "backend": backend,
        "submit_wall": submit_wall,
        "submit_rate": FLOOD / max(submit_wall, 1e-9),
        "broad_ms": broad_wall / QUERIES * 1000.0,
        "selective_ms": selective_wall / QUERIES * 1000.0,
    }


def _first_event_latency(tmp_path, backend: str) -> float:
    """Submit one real job; wall time from POST to its first SSE id frame."""
    front = ServiceFront(
        str(tmp_path / f"sse.{backend}"), tenants=_registry(), fsync=False
    )
    with ServerThread(front) as server:
        base = "http://%s:%d" % server.address
        started = time.perf_counter()
        body = _post(base, "/jobs", {"benchmark": "Oracle-1", "config": CONFIG})
        (name,) = body["submitted"]
        request = urllib.request.Request(
            f"{base}/jobs/{name}/events", headers={"X-API-Key": API_KEY}
        )
        with urllib.request.urlopen(request, timeout=120) as response:
            for raw in response:
                if raw.decode("utf-8").startswith("id: "):
                    return time.perf_counter() - started
    raise AssertionError("SSE stream closed without an event frame")


def test_store_backend_ab(tmp_path):
    """Submit-flood throughput and indexed-query latency, JSONL vs SQLite."""
    results = [_measure_backend(tmp_path, backend) for backend in ("jsonl", "sqlite")]
    by_backend = {entry["backend"]: entry for entry in results}

    print()
    print(
        render_table(
            ["Backend", "Submits", "Wall(s)", "Submits/s", "broad(ms)", "selective(ms)"],
            [
                [
                    entry["backend"],
                    FLOOD,
                    f"{entry['submit_wall']:.2f}",
                    f"{entry['submit_rate']:.0f}",
                    f"{entry['broad_ms']:.2f}",
                    f"{entry['selective_ms']:.3f}",
                ]
                for entry in results
            ],
            title=f"Service front store A/B ({FLOOD} deferred jobs, {CLIENTS} clients)",
        )
    )
    # The indexed backend must win the selective query race: a JSONL query
    # replays all FLOOD submission records whatever it returns, SQLite reads
    # its tenant/status index and touches no rows.  (Submit throughput and
    # broad queries are allowed to tie — there the row materialization and
    # the HTTP layer dominate, not the lookup.)
    assert by_backend["sqlite"]["selective_ms"] < by_backend["jsonl"]["selective_ms"], (
        "indexed query_jobs slower than the JSONL full replay: "
        f"{by_backend['sqlite']['selective_ms']:.3f}ms vs "
        f"{by_backend['jsonl']['selective_ms']:.3f}ms"
    )


def test_sse_first_event_latency(tmp_path):
    """Submit → first SSE frame with one real job, per backend."""
    rows = []
    for backend in ("jsonl", "sqlite"):
        latency = _first_event_latency(tmp_path, backend)
        rows.append([backend, f"{latency * 1000:.0f}"])
        # Liveness gate: the bridge must deliver while the job runs — a
        # post-hoc replay would sit behind the whole synthesis (~seconds).
        assert latency < 30.0
    print()
    print(
        render_table(
            ["Backend", "FirstSSE(ms)"],
            rows,
            title="Time to first SSE event (submit -> first id frame)",
        )
    )
