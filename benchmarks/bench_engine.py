"""Execution-engine benchmark: interpreter vs compiled backend A/B.

Two measurements per selected Table 1 workload:

* **candidate-execution throughput** — the source program executed on a
  fixed batch of bounded-tester invocation sequences under each backend
  (this is the inner loop the search-and-check algorithm pays thousands of
  times per benchmark; the compiled closure translation plus hash joins is
  the whole win);
* **end-to-end synthesis** — one full synthesis run per backend on a small
  multi-sketch workload, demonstrating that the throughput gain survives the
  complete pipeline (pool screening, source caching, verification).

Run with ``pytest benchmarks/bench_engine.py``; a plain-text report
(`render_engine_report`) is printed at the end of the session.  Set
``REPRO_BENCH_SMOKE=1`` for the CI smoke job (one workload, tiny batch, no
end-to-end run).  Acceptance: the compiled backend sustains ≥ 3× the
interpreter's sequence throughput on at least two workloads (one in smoke
mode), checked by ``test_engine_aggregate``.
"""

from __future__ import annotations

import itertools
import os
import time

import pytest

from repro.core import Synthesizer, SynthesisConfig
from repro.engine.compiler import ProgramCompiler
from repro.engine.interpreter import run_invocation_sequence
from repro.equivalence.invocation import SequenceGenerator
from repro.eval.reporting import engine_summary_row, render_engine_report
from repro.workloads import get_benchmark

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0", "false")

#: Workloads for the throughput A/B (a textbook single-sketch benchmark, the
#: multi-sketch Ambler-5, and two real-world CRUD suites).
THROUGHPUT_WORKLOADS = ["Oracle-1"] if SMOKE else [
    "Oracle-1",
    "Ambler-5",
    "coachup",
    "rails-ecomm",
]
SEQUENCES = 100 if SMOKE else 400
REPEATS = 3
#: Acceptance threshold.  Local/full runs hold the ISSUE criterion (3x);
#: the CI smoke job uses a lower tripwire so a noisy shared runner cannot
#: flake an unrelated PR — measured headroom is ~6x, so 2x still catches
#: any real engine regression.
MIN_SPEEDUP = 2.0 if SMOKE else 3.0

#: Rows accumulated across the parametrized runs, printed at session end.
_REPORT_ROWS: list[list] = []

#: name -> measured speedup, consumed by the aggregate acceptance check.
_SPEEDUPS: dict[str, float] = {}


def _best_rate(run, repeats: int, count: int) -> float:
    """Executions/second, best of *repeats* (minimises scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return count / best


@pytest.mark.parametrize("name", THROUGHPUT_WORKLOADS)
def test_engine_throughput(name):
    program = get_benchmark(name).source_program
    sequences = list(
        itertools.islice(SequenceGenerator(programs=[program]).sequences(), SEQUENCES)
    )
    assert sequences, f"workload {name} produced no bounded sequences"

    def run_interpreter():
        for sequence in sequences:
            run_invocation_sequence(program, sequence)

    compile_started = time.perf_counter()
    compiled = ProgramCompiler().compile_program(program)
    compile_ms = (time.perf_counter() - compile_started) * 1e3

    def run_compiled():
        for sequence in sequences:
            compiled.run_sequence(sequence)

    interp_rate = _best_rate(run_interpreter, REPEATS, len(sequences))
    compiled_rate = _best_rate(run_compiled, REPEATS, len(sequences))

    _SPEEDUPS[name] = compiled_rate / interp_rate
    _REPORT_ROWS.append(
        engine_summary_row(name, len(sequences), interp_rate, compiled_rate, compile_ms)
    )

    # Equal outputs on the measured batch: the A/B is meaningless otherwise.
    sample = sequences[:: max(1, len(sequences) // 20)]
    for sequence in sample:
        assert run_invocation_sequence(program, sequence) == compiled.run_sequence(sequence)


def test_engine_aggregate():
    """Acceptance: ≥ MIN_SPEEDUP on at least two workloads (one in smoke mode)."""
    print()
    print(render_engine_report(_REPORT_ROWS))
    needed = 1 if SMOKE else 2
    fast_enough = [name for name, speedup in _SPEEDUPS.items() if speedup >= MIN_SPEEDUP]
    assert len(fast_enough) >= needed, (
        f"expected >={MIN_SPEEDUP}x speedup on at least {needed} workloads; "
        f"measured {_SPEEDUPS}"
    )


@pytest.mark.skipif(SMOKE, reason="smoke job runs the throughput A/B only")
def test_engine_end_to_end():
    """One synthesis run per backend: same outcome, compiled no slower."""
    bench = get_benchmark("Ambler-5")
    results = {}
    for backend in ("interpreter", "compiled"):
        config = SynthesisConfig()
        config.execution_backend = backend
        config.verifier_random_sequences = 10
        config.time_limit = 120.0
        started = time.perf_counter()
        result = Synthesizer(config).synthesize(bench.source_program, bench.target_schema)
        results[backend] = (result, time.perf_counter() - started)
        print(f"  Ambler-5 [{backend}] ok={result.succeeded} "
              f"iters={result.iterations} total={results[backend][1]:.1f}s")
    interp_result, interp_time = results["interpreter"]
    compiled_result, compiled_time = results["compiled"]
    assert interp_result.succeeded == compiled_result.succeeded
    # The search trajectory is identical (same verdict per candidate), so the
    # iteration counts must match exactly; wall-clock is reported, not
    # asserted (CI machines are noisy).
    assert interp_result.iterations == compiled_result.iterations
    print(f"  end-to-end speedup: {interp_time / max(compiled_time, 1e-9):.2f}x")
