"""Execution-engine benchmark: interpreter vs compiled vs columnar.

Three measurements per selected Table 1 workload:

* **candidate-execution throughput** — the source program executed on a
  fixed batch of bounded-tester invocation sequences under each backend
  (this is the inner loop the search-and-check algorithm pays thousands of
  times per benchmark; closure translation plus hash joins is the whole
  win, and the columnar backend must hold that win sequence-at-a-time
  before its batch kernels add anything);
* **screening-loop throughput** — the candidate-screening hot path
  (``CounterexamplePool.screen`` vs ``screen_batch``): one candidate
  screened against a pool of counterexample sequences, scalar compiled
  execution vs the columnar trie batch kernel.  This is the vectorization
  headline: the batch kernel shares invocation-prefix execution and
  amortizes dispatch across the pool;
* **end-to-end synthesis** — one full synthesis run per backend on a small
  multi-sketch workload, demonstrating that the gains survive the complete
  pipeline (pool screening, source caching, verification) without changing
  the search trajectory.

Every measurement reports the DAT300 axes (wall, CPU, high-water RSS, and
time-to-first-event for the streaming run) in cold and warm modes via
``benchmarks/measure.py``, and the aggregate test serializes everything to
``BENCH_engine.json`` (override the path with ``REPRO_BENCH_JSON``) so CI
can archive the perf trajectory across PRs.

Run with ``pytest benchmarks/bench_engine.py``; a plain-text report
(`render_engine_report`) is printed at the end of the session.  Set
``REPRO_BENCH_SMOKE=1`` for the CI smoke job (one workload, tiny batch, no
end-to-end run).  Acceptance, checked by ``test_engine_aggregate``:

* the compiled backend sustains ≥ 3x the interpreter's sequence throughput
  on at least two workloads (≥ 2x on one workload in smoke mode);
* batched screening sustains ≥ 3x the compiled scalar screening throughput
  on at least two workloads (≥ 2x on one workload in smoke mode).
"""

from __future__ import annotations

import gc
import itertools
import os
import time

import pytest

from measure import BenchReport, measure, measure_streaming
from repro.core import Synthesizer, SynthesisConfig
from repro.engine.compiler import ProgramCompiler
from repro.engine.interpreter import run_invocation_sequence
from repro.equivalence.invocation import SequenceGenerator
from repro.equivalence.tester import BoundedTester
from repro.eval.reporting import engine_summary_row, render_engine_report
from repro.lang.ast import UpdateFunction
from repro.testing_cache import CounterexamplePool
from repro.workloads import get_benchmark

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0", "false")

#: Workloads for the throughput A/B (a textbook single-sketch benchmark, the
#: multi-sketch Ambler-5, and two real-world CRUD suites).
THROUGHPUT_WORKLOADS = ["Oracle-1"] if SMOKE else [
    "Oracle-1",
    "Ambler-5",
    "coachup",
    "rails-ecomm",
]
SEQUENCES = 100 if SMOKE else 400
REPEATS = 3
#: Acceptance threshold for compiled-vs-interpreter throughput.  Local/full
#: runs hold the original criterion (3x); the CI smoke job uses a lower
#: tripwire so a noisy shared runner cannot flake an unrelated PR —
#: measured headroom is ~6x, so 2x still catches any real regression.
MIN_SPEEDUP = 2.0 if SMOKE else 3.0

#: Workloads and pool size for the screening-loop A/B: a textbook Oracle
#: schema, two multi-sketch Ambler suites and two real-world CRUD suites.
#: (Oracle-1 is deliberately absent: its bounded space yields a ~30-sequence
#: pool, so per-screen fixed costs dominate and the trie kernel has almost
#: no prefix sharing to amortize — it bounds the win at ~2x structurally.)
SCREENING_WORKLOADS = ["coachup"] if SMOKE else [
    "Oracle-2",
    "Ambler-5",
    "Ambler-8",
    "coachup",
    "rails-ecomm",
]
POOL_SEQUENCES = 64 if SMOKE else 160
#: Acceptance threshold for batched-vs-scalar screening (the full run holds
#: the 3x criterion; smoke keeps the 2x tripwire).
MIN_SCREEN_SPEEDUP = 2.0 if SMOKE else 3.0

#: Rows accumulated across the parametrized runs, printed at session end.
_REPORT_ROWS: list[list] = []

#: name -> measured speedup, consumed by the aggregate acceptance checks.
_SPEEDUPS: dict[str, float] = {}
_SCREEN_SPEEDUPS: dict[str, float] = {}

#: The machine-readable counterpart of the printed report.
_REPORT = BenchReport(suite="engine", mode="smoke" if SMOKE else "full")


def _best_seconds(run, repeats: int) -> float:
    """Fastest of *repeats* executions (minimises scheduler noise)."""
    gc.collect()
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best


def _best_rate(run, repeats: int, count: int) -> float:
    """Executions/second, best of *repeats*."""
    return count / _best_seconds(run, repeats)


def _best_paired_rates(run_a, run_b, repeats: int, count: int) -> tuple[float, float]:
    """Best-of rates for two bodies measured in alternation.

    An A/B speedup computed from two back-to-back measurement phases folds
    machine-load drift entirely into one side; alternating the repeats makes
    a slow patch hit both sides roughly equally, so the *ratio* is stable
    even when the absolute rates wobble.
    """
    gc.collect()
    best_a = best_b = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        run_a()
        best_a = min(best_a, time.perf_counter() - started)
        started = time.perf_counter()
        run_b()
        best_b = min(best_b, time.perf_counter() - started)
    return count / best_a, count / best_b


# ------------------------------------------------------------- throughput
@pytest.mark.parametrize("name", THROUGHPUT_WORKLOADS)
def test_engine_throughput(name):
    program = get_benchmark(name).source_program
    sequences = list(
        itertools.islice(SequenceGenerator(programs=[program]).sequences(), SEQUENCES)
    )
    assert sequences, f"workload {name} produced no bounded sequences"

    def run_interpreter():
        for sequence in sequences:
            run_invocation_sequence(program, sequence)

    # Cold mode: compilation on the clock, plus one full pass each.
    compiler = ProgramCompiler()
    compile_started = time.perf_counter()
    compiled = compiler.compile_program(program)
    compile_ms = (time.perf_counter() - compile_started) * 1e3
    columnar_started = time.perf_counter()
    columnar = compiler.compile_columnar(program)
    columnar_compile_ms = (time.perf_counter() - columnar_started) * 1e3

    def run_compiled():
        for sequence in sequences:
            compiled.run_sequence(sequence)

    def run_columnar():
        for sequence in sequences:
            columnar.run_sequence(sequence)

    cold = {
        "interpreter": measure(run_interpreter),
        "compiled": measure(run_compiled),
        "columnar": measure(run_columnar),
    }

    # Warm mode: steady-state throughput, best of REPEATS.
    interp_rate = _best_rate(run_interpreter, REPEATS, len(sequences))
    compiled_rate = _best_rate(run_compiled, REPEATS, len(sequences))
    columnar_rate = _best_rate(run_columnar, REPEATS, len(sequences))

    _SPEEDUPS[name] = compiled_rate / interp_rate
    _REPORT_ROWS.append(
        engine_summary_row(
            name, len(sequences), interp_rate, compiled_rate, compile_ms,
            columnar_per_sec=columnar_rate,
        )
    )
    _REPORT.record("throughput", name, {
        "sequences": len(sequences),
        "interpreter_seq_per_s": round(interp_rate, 1),
        "compiled_seq_per_s": round(compiled_rate, 1),
        "columnar_seq_per_s": round(columnar_rate, 1),
        "compiled_speedup": round(compiled_rate / interp_rate, 3),
        "columnar_speedup": round(columnar_rate / interp_rate, 3),
        "compile_ms": round(compile_ms, 3),
        "columnar_compile_ms": round(columnar_compile_ms, 3),
        "cold": {backend: run.to_dict() for backend, run in cold.items()},
    })

    # Equal outputs on the measured batch: the A/B is meaningless otherwise.
    sample = sequences[:: max(1, len(sequences) // 20)]
    for sequence in sample:
        expected = run_invocation_sequence(program, sequence)
        assert expected == compiled.run_sequence(sequence)
        assert expected == columnar.run_sequence(sequence)


# -------------------------------------------------------- screening loop
def _mutated(program):
    """A candidate with one update gutted — it must fail pool screening."""
    functions = []
    broken = False
    for func in program:
        if not broken and isinstance(func, UpdateFunction) and func.statements:
            functions.append(UpdateFunction(func.name, func.params, ()))
            broken = True
        else:
            functions.append(func)
    assert broken, "workload has no update function to mutate"
    return program.with_functions(functions, name=f"{program.name}-mutant")


@pytest.mark.parametrize("name", SCREENING_WORKLOADS)
def test_screening_throughput(name):
    """Batched screening (columnar trie kernel) vs scalar compiled screening.

    The candidate is an exact clone of the source, so screening always
    scans the whole pool — the hot path's worst case and the measurement's
    steady state.  A mutated candidate then pins verdict parity: both paths
    must report the same counterexample.
    """
    program = get_benchmark(name).source_program
    sequences = list(
        itertools.islice(
            SequenceGenerator(programs=[program]).sequences(), POOL_SEQUENCES
        )
    )
    assert len(sequences) >= 16, f"workload {name} pool too small to measure"
    candidate = program.with_functions(list(program), name=f"{program.name}-clone")

    def build(backend):
        pool = CounterexamplePool(max_size=len(sequences) + 8)
        for sequence in sequences:
            pool.add(sequence)
        tester = BoundedTester(program, pool=pool, execution_backend=backend)
        return pool, tester

    scalar_pool, scalar_tester = build("compiled")
    batch_pool, batch_tester = build("columnar")

    def scalar_screen():
        return scalar_pool.screen(candidate, scalar_tester.differs_on)

    def batch_screen():
        return batch_pool.screen_batch(candidate, batch_tester.differs_on_batch)

    # Cold pass per path: compilation plus source-cache population on the
    # clock; doubles as the warm-up for the steady-state measurement.
    cold_scalar = measure(scalar_screen)
    cold_batch = measure(batch_screen)
    assert cold_scalar.value is None and cold_batch.value is None

    scalar_rate, batch_rate = _best_paired_rates(
        scalar_screen, batch_screen, REPEATS, len(sequences)
    )
    speedup = batch_rate / scalar_rate
    _SCREEN_SPEEDUPS[name] = speedup
    _REPORT.record("screening", name, {
        "pool_sequences": len(sequences),
        "scalar_seq_per_s": round(scalar_rate, 1),
        "batched_seq_per_s": round(batch_rate, 1),
        "speedup": round(speedup, 3),
        "batch_high_water": batch_pool.stats.max_batch_size,
        "cold": {
            "scalar": cold_scalar.to_dict(),
            "batched": cold_batch.to_dict(),
        },
    })
    print(f"  {name}: scalar {scalar_rate:,.0f} seq/s, "
          f"batched {batch_rate:,.0f} seq/s ({speedup:.2f}x, "
          f"batch high-water {batch_pool.stats.max_batch_size})")

    # Verdict parity on a genuinely failing candidate.
    mutant = _mutated(program)
    assert scalar_pool.screen(mutant, scalar_tester.differs_on) == \
        batch_pool.screen_batch(mutant, batch_tester.differs_on_batch)
    assert scalar_pool.stats.hits == batch_pool.stats.hits


# ------------------------------------------------------------- end-to-end
@pytest.mark.skipif(SMOKE, reason="smoke job runs the throughput A/Bs only")
def test_engine_end_to_end():
    """One synthesis run per backend: same trajectory, measured resources."""
    bench = get_benchmark("Ambler-5")
    runs = {}
    for backend in ("interpreter", "compiled", "columnar"):
        config = SynthesisConfig()
        config.execution_backend = backend
        config.verifier_random_sequences = 10
        config.time_limit = 120.0

        def body(first_event):
            session = Synthesizer(config).session(
                bench.source_program, bench.target_schema
            )
            for _ in session.events():
                first_event()
            return session.result

        runs[backend] = measure_streaming(body)
        result = runs[backend].value
        print(f"  Ambler-5 [{backend}] ok={result.succeeded} "
              f"iters={result.iterations} wall={runs[backend].wall_s:.2f}s "
              f"cpu={runs[backend].cpu_s:.2f}s "
              f"first-event={runs[backend].first_event_s:.3f}s")
        payload = runs[backend].to_dict()
        payload.update(
            succeeded=result.succeeded,
            iterations=result.iterations,
            pool_hits=result.cache.pool_hits,
            sequences_screened_batched=result.cache.sequences_screened_batched,
            screening_batch_high_water=result.cache.screening_batch_high_water,
        )
        _REPORT.record("end_to_end", f"Ambler-5/{backend}", payload)

    reference = runs["interpreter"].value
    for backend in ("compiled", "columnar"):
        result = runs[backend].value
        # The search trajectory is identical (same verdict per candidate),
        # so the iteration counts must match exactly; wall-clock is
        # reported, not asserted (CI machines are noisy).
        assert result.succeeded == reference.succeeded
        assert result.iterations == reference.iterations
    # The columnar run must actually exercise its batch kernels.
    assert runs["columnar"].value.cache.sequences_screened_batched > 0
    assert runs["compiled"].value.cache.sequences_screened_batched == 0


# -------------------------------------------------------------- aggregate
def test_engine_aggregate():
    """Acceptance gates + BENCH_engine.json emission (runs last)."""
    print()
    print(render_engine_report(_REPORT_ROWS))
    needed = 1 if SMOKE else 2
    fast_enough = [name for name, speedup in _SPEEDUPS.items() if speedup >= MIN_SPEEDUP]
    assert len(fast_enough) >= needed, (
        f"expected >={MIN_SPEEDUP}x compiled speedup on at least {needed} "
        f"workloads; measured {_SPEEDUPS}"
    )
    screen_fast = [
        name for name, speedup in _SCREEN_SPEEDUPS.items()
        if speedup >= MIN_SCREEN_SPEEDUP
    ]
    assert len(screen_fast) >= needed, (
        f"expected >={MIN_SCREEN_SPEEDUP}x batched-screening speedup on at "
        f"least {needed} workloads; measured {_SCREEN_SPEEDUPS}"
    )
    path = _REPORT.write()
    print(f"  benchmark JSON written to {path}")
