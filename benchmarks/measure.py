"""DAT300-style measurement helpers for the benchmark suite.

Every benchmark in this directory reports the same four resource axes —
wall-clock time, CPU time (user + system), high-water resident set size and,
where a run streams progress, time-to-first-event — in both *cold* (first
run, caches empty, compilation on the clock) and *warm* (steady-state)
modes, and can serialize its numbers into a machine-readable
``BENCH_<suite>.json`` so CI can track the performance trajectory across
pull requests.

Only the standard library is used: CPU time comes from :func:`os.times`,
the RSS high-water mark from ``/proc/self/status`` (``VmHWM``) with a
:mod:`resource` ``ru_maxrss`` fallback on platforms without procfs.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional

#: Root of the repository (``benchmarks/`` lives directly below it); the
#: default landing spot for ``BENCH_*.json`` files.
REPO_ROOT = Path(__file__).resolve().parent.parent

#: Version of the JSON schema below.  Bump on breaking layout changes so a
#: trajectory-tracking consumer can dispatch on it.
SCHEMA_VERSION = 1


def rss_high_water_kb() -> Optional[int]:
    """The process's peak resident set size, in kilobytes.

    Reads ``VmHWM`` from ``/proc/self/status``; falls back to
    ``resource.getrusage`` (whose ``ru_maxrss`` is already in KiB on Linux).
    Returns ``None`` when neither source is available.
    """
    try:
        with open("/proc/self/status", encoding="ascii") as status:
            for line in status:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
    except OSError:
        pass
    try:
        import resource

        return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    except Exception:  # pragma: no cover - exotic platforms only
        return None


@dataclass
class MeasuredRun:
    """One measured execution of a benchmark body."""

    wall_s: float
    cpu_s: float
    rss_high_water_kb: Optional[int]
    #: Seconds until the body reported its first observable event (streaming
    #: runs only; ``None`` otherwise).
    first_event_s: Optional[float] = None
    #: Whatever the measured callable returned.
    value: Any = None

    def to_dict(self) -> dict:
        payload = {
            "wall_s": round(self.wall_s, 6),
            "cpu_s": round(self.cpu_s, 6),
            "rss_high_water_kb": self.rss_high_water_kb,
        }
        if self.first_event_s is not None:
            payload["first_event_s"] = round(self.first_event_s, 6)
        return payload


def measure(body: Callable[[], Any]) -> MeasuredRun:
    """Run *body* once, measuring wall, CPU and RSS high-water.

    The RSS figure is the process-lifetime peak (the kernel exposes no
    cheaper per-interval counter), which is exactly what a "did this stage
    blow up memory" trajectory wants: it is monotone across the session, so
    a stage that raises it is the stage that owns the peak.

    To time a first event, have *body* call the ``first_event`` callback
    passed to it — ``measure`` only inspects its arity-0 interface, so use
    :func:`measure_streaming` for that instead.
    """
    cpu_before = os.times()
    started = time.perf_counter()
    value = body()
    wall = time.perf_counter() - started
    cpu_after = os.times()
    cpu = (cpu_after.user - cpu_before.user) + (cpu_after.system - cpu_before.system)
    return MeasuredRun(wall, cpu, rss_high_water_kb(), value=value)


def measure_streaming(body: Callable[[Callable[[], None]], Any]) -> MeasuredRun:
    """Like :func:`measure` for bodies that stream events.

    *body* receives a zero-argument callback; the first invocation stamps
    ``first_event_s``.
    """
    marks: list[float] = []
    cpu_before = os.times()
    started = time.perf_counter()

    def first_event() -> None:
        if not marks:
            marks.append(time.perf_counter() - started)

    value = body(first_event)
    wall = time.perf_counter() - started
    cpu_after = os.times()
    cpu = (cpu_after.user - cpu_before.user) + (cpu_after.system - cpu_before.system)
    run = MeasuredRun(wall, cpu, rss_high_water_kb(), value=value)
    if marks:
        run.first_event_s = marks[0]
    return run


@dataclass
class BenchReport:
    """Accumulates one suite's metrics and serializes them to JSON.

    ``metrics`` is a two-level mapping ``section -> key -> payload`` (e.g.
    ``metrics["screening"]["Ambler-5"]["speedup"]``); sections are created
    on first use via :meth:`record`.
    """

    suite: str
    mode: str
    metrics: dict[str, dict[str, Any]] = field(default_factory=dict)

    def record(self, section: str, key: str, payload: dict) -> None:
        self.metrics.setdefault(section, {})[key] = payload

    def to_dict(self) -> dict:
        return {
            "schema_version": SCHEMA_VERSION,
            "suite": self.suite,
            "mode": self.mode,
            "python": platform.python_version(),
            "platform": platform.platform(),
            "metrics": self.metrics,
        }

    def write(self, path: Optional[os.PathLike | str] = None) -> Path:
        """Write the report; returns the path written.

        The default target is ``<repo>/BENCH_<suite>.json``; the
        ``REPRO_BENCH_JSON`` environment variable overrides it (CI points it
        into the artifact directory).
        """
        if path is None:
            path = os.environ.get("REPRO_BENCH_JSON") or (
                REPO_ROOT / f"BENCH_{self.suite}.json"
            )
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")
        return path
