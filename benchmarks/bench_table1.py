"""Table 1 — Migrator synthesis time per benchmark.

Each pytest-benchmark entry measures one end-to-end synthesis run (value
correspondence enumeration + sketch generation + MFI-based completion +
bounded verification) for one benchmark of the suite, i.e. one row of the
paper's Table 1.  The printed ``extra_info`` carries the row's remaining
columns (value correspondences considered, completions explored).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import table1_selection
from repro.core import Synthesizer
from repro.workloads import get_benchmark


@pytest.mark.parametrize("name", table1_selection())
def test_table1_synthesis(benchmark, synthesis_config, name):
    bench = get_benchmark(name)

    def run():
        return Synthesizer(synthesis_config).synthesize(
            bench.source_program, bench.target_schema
        )

    result = benchmark.pedantic(run, iterations=1, rounds=1)
    benchmark.extra_info["benchmark"] = name
    benchmark.extra_info["description"] = bench.description
    benchmark.extra_info["functions"] = bench.num_functions
    benchmark.extra_info["value_correspondences"] = result.value_correspondences_tried
    benchmark.extra_info["iterations"] = result.iterations
    benchmark.extra_info["synthesis_time_s"] = round(result.synthesis_time, 2)
    benchmark.extra_info["total_time_s"] = round(result.total_time, 2)
    assert result.succeeded, f"{name} failed to synthesize"
