"""Incremental-testing benchmark: counterexample-pool A/B on Table 1 workloads.

For every selected benchmark the harness synthesizes twice — once with the
cross-sketch counterexample pool enabled (the default) and once with
``SynthesisConfig.counterexample_pool = False`` (the seed behaviour) — and
reports how many candidates were rejected by pool screening instead of the
full bounded enumeration.

Both completion strategies are measured:

* ``mfi`` (the paper's Algorithm 2): MFI blocking repairs exactly the failing
  functions, so pooled counterexamples mostly transfer *across* sketches; the
  pool pays off on the multi-sketch workloads (e.g. Ambler-5, 2030Club).
* ``enumerative`` (the Table 3 baseline): full-model blocking leaves the
  failure mode intact between candidates, so nearly every failing candidate
  after the first dies in screening — the pool converts the baseline's
  quadratic re-testing into one full enumeration per failure mode.

Run with ``pytest benchmarks/bench_cache.py --benchmark-only``; a plain-text
report (`render_cache_report`) is printed at the end of the session.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import table1_selection
from repro.core import Synthesizer, SynthesisConfig
from repro.eval.reporting import cache_summary_row, render_cache_report
from repro.workloads import get_benchmark

#: Rows accumulated across the parametrized runs, printed at session end.
_REPORT_ROWS: list[list] = []

#: Enumerative A/B stats collected by test_cache_ab, reused by the aggregate
#: test so each pair is synthesized once per session.
_ENUMERATIVE_AB: dict[str, tuple] = {}

STRATEGIES = ["mfi", "enumerative"]


def _config(strategy: str, pool: bool) -> SynthesisConfig:
    config = SynthesisConfig()
    config.completion_strategy = strategy
    config.counterexample_pool = pool
    config.verifier_random_sequences = 10
    config.time_limit = 60.0
    # Keep the enumerative baseline's candidate explosion bounded: the A/B
    # compares *how many* candidates pay for a full enumeration, which a few
    # hundred iterations already demonstrate (Oracle-2 alone would otherwise
    # burn 20k candidates per run).
    config.max_iterations_per_sketch = 300
    return config


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("name", table1_selection())
def test_cache_ab(benchmark, name, strategy):
    bench = get_benchmark(name)

    def run_with_pool():
        return Synthesizer(_config(strategy, pool=True)).synthesize(
            bench.source_program, bench.target_schema
        )

    with_pool = benchmark.pedantic(run_with_pool, iterations=1, rounds=1)
    without_pool = Synthesizer(_config(strategy, pool=False)).synthesize(
        bench.source_program, bench.target_schema
    )

    row = cache_summary_row(name, strategy, with_pool.cache, without_pool.cache)
    _REPORT_ROWS.append(row)
    benchmark.extra_info["benchmark"] = name
    benchmark.extra_info["strategy"] = strategy
    benchmark.extra_info["pool_hits"] = with_pool.cache.pool_hits
    benchmark.extra_info["hit_rate"] = round(with_pool.cache.hit_rate, 3)
    benchmark.extra_info["fully_tested_pool"] = with_pool.cache.candidates_fully_tested
    benchmark.extra_info["fully_tested_off"] = without_pool.cache.candidates_fully_tested
    benchmark.extra_info["sequences_saved"] = with_pool.cache.sequences_saved_estimate

    # Under the enumerative strategy the blocking clause is the full model
    # either way, so the candidate sequence is identical and screening only
    # ever *replaces* full enumerations.  Under 'mfi' a pool hit yields a
    # non-minimal failing input and a weaker blocking clause, so the search
    # trajectory (and, under iteration caps, even the outcome) may diverge —
    # there the rows are reported without hard assertions.  A run cut short
    # by the wall-clock limit exempts the outcome comparison: on a slow host
    # the unscreened run can time out where the pooled run finishes.
    if strategy == "enumerative":
        _ENUMERATIVE_AB[name] = (with_pool.cache, without_pool.cache)
        if not (with_pool.timed_out or without_pool.timed_out):
            assert with_pool.succeeded == without_pool.succeeded, (
                "pool screening must not change the enumerative outcome"
            )
            assert (
                with_pool.cache.candidates_fully_tested
                <= without_pool.cache.candidates_fully_tested
            )


def test_cache_aggregate_enumerative():
    """Acceptance check: the pool demonstrably reduces full bounded testing.

    Aggregated over the selection with the enumerative completer (the
    strategy whose re-testing the pool is designed to kill): pool hit-rate is
    positive on at least half of the workloads that test more than one
    candidate, and the total number of fully tested candidates drops.
    """
    measured = []
    for name in table1_selection():
        if name in _ENUMERATIVE_AB:
            # Reuse the pair test_cache_ab already synthesized (and reported)
            # this session instead of paying for it twice.
            on_stats, off_stats = _ENUMERATIVE_AB[name]
        else:
            bench = get_benchmark(name)
            on_stats = (
                Synthesizer(_config("enumerative", pool=True))
                .synthesize(bench.source_program, bench.target_schema)
                .cache
            )
            off_stats = (
                Synthesizer(_config("enumerative", pool=False))
                .synthesize(bench.source_program, bench.target_schema)
                .cache
            )
            _REPORT_ROWS.append(
                cache_summary_row(name, "enumerative", on_stats, off_stats)
            )
        measured.append((name, on_stats, off_stats))

    print()
    print(render_cache_report(_REPORT_ROWS))

    total_on = sum(on.candidates_fully_tested for _, on, _ in measured)
    total_off = sum(off.candidates_fully_tested for _, _, off in measured)
    assert total_on < total_off, (
        f"pool should reduce full bounded-testing calls ({total_on} vs {total_off})"
    )

    contested = [(name, on) for name, on, _ in measured if on.candidates_screened > 0]
    with_hits = [name for name, on in contested if on.pool_hits > 0]
    assert len(with_hits) * 2 >= len(contested), (
        f"pool hit-rate > 0 expected on at least half the contested workloads; "
        f"got {with_hits} out of {[name for name, _ in contested]}"
    )
