"""Table 2 — the Sketch-style CEGIS/BMC baseline vs Migrator.

Measures the monolithic bounded-model-checking baseline on a subset of
benchmarks (all of them with ``REPRO_BENCH_FULL=1``).  The baseline is
expected to be much slower than Migrator and to hit its timeout on the
larger benchmarks — that is the result being reproduced, so a timeout is not
a benchmark failure.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import BASELINE_TIMEOUT, baseline_selection
from repro.core import SynthesisConfig, Synthesizer
from repro.workloads import get_benchmark


def _baseline_config() -> SynthesisConfig:
    config = SynthesisConfig()
    config.completion_strategy = "bmc"
    config.final_verification = False
    config.time_limit = BASELINE_TIMEOUT
    config.sketch_time_limit = BASELINE_TIMEOUT
    return config


@pytest.mark.parametrize("name", baseline_selection())
def test_table2_bmc_baseline(benchmark, name):
    bench = get_benchmark(name)

    def run():
        started = time.perf_counter()
        result = Synthesizer(_baseline_config()).synthesize(
            bench.source_program, bench.target_schema
        )
        return result, time.perf_counter() - started

    (result, elapsed) = benchmark.pedantic(run, iterations=1, rounds=1)
    benchmark.extra_info["benchmark"] = name
    benchmark.extra_info["succeeded"] = result.succeeded
    benchmark.extra_info["timed_out"] = not result.succeeded and elapsed >= BASELINE_TIMEOUT * 0.9
    benchmark.extra_info["iterations"] = result.iterations
