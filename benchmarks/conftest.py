"""Shared configuration for the pytest-benchmark harness.

Each benchmark file regenerates one table of the paper's evaluation.  By
default the harness runs a laptop-sized subset (every textbook benchmark plus
a few real-world applications, and short baseline timeouts) so that
``pytest benchmarks/ --benchmark-only`` finishes in minutes; set
``REPRO_BENCH_FULL=1`` to run all 20 benchmarks with long timeouts, which is
what EXPERIMENTS.md reports.
"""

from __future__ import annotations

import os

import pytest

FULL = os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0", "false")

#: Benchmarks used by the default (quick) harness runs.
QUICK_TABLE1 = [
    "Oracle-1", "Oracle-2", "Ambler-1", "Ambler-2", "Ambler-3",
    "Ambler-4", "Ambler-5", "Ambler-6", "Ambler-7", "Ambler-8",
    "coachup", "MathHotSpot", "rails-ecomm",
]
QUICK_BASELINE = ["Oracle-1", "Ambler-1", "Ambler-4", "Ambler-7", "Ambler-8"]

#: Per-benchmark timeout (seconds) for the baseline tables.
BASELINE_TIMEOUT = 300.0 if FULL else 45.0


def table1_selection() -> list[str]:
    from repro.eval.table1 import TABLE1_ORDER

    return list(TABLE1_ORDER) if FULL else QUICK_TABLE1


def baseline_selection() -> list[str]:
    from repro.eval.table1 import TABLE1_ORDER

    return list(TABLE1_ORDER) if FULL else QUICK_BASELINE


@pytest.fixture(scope="session")
def synthesis_config():
    from repro.core import SynthesisConfig

    config = SynthesisConfig()
    config.verifier_random_sequences = 25
    config.time_limit = 600.0 if FULL else 120.0
    return config
