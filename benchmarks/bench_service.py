"""Multi-job throughput A/B: MigrationService batch vs N sequential migrate().

The service's claim is that a *batch* of migration jobs is cheaper than the
same jobs run as independent ``migrate()`` calls, because jobs share
process-wide artifacts: the compiled-program cache (keyed by schema
signature + function AST), the bounded source-output cache, and per-source
counterexample pools.  The sharing-friendly scenario is the production one —
one source program migrated toward several candidate target schemas (the
planned refactoring plus rename variants).

Two service modes are measured:

* **in-process** (``max_workers=0``): sharing only — deterministic on any
  host, and the mode the ≥1.3x acceptance gate asserts on;
* **process pool** (``max_workers=4``): sharing per worker process plus
  job-level parallelism — reported for context, with no hard assertion
  because the win depends on the host's core count (this container often
  has a single core, where the pool can only add overhead).

A second measurement covers the unified execution layer's event streaming:
**first-event latency** under the queue transport — how long after
``run()`` the first live typed event of a pooled (``max_workers > 1``)
batch reaches the parent's ``on_event``.  Before the execution-layer
refactor this quantity did not exist (pooled jobs delivered no live events
at all); the gate asserts events arrive while the batch is still running,
i.e. streaming is live rather than post-hoc.

API v2 additions measured here too:

* **parallel-session first-event latency** — the same liveness gate for
  ``SynthesisSession(config, parallel_workers=N)``: worker attempts stream
  their merged, deterministically ordered events while the run is still
  going (1.x parallel runs streamed nothing);
* **resumable batches** — a deliberately interrupted 5-job batch restarted
  through ``MigrationService.resume()`` must run only its unfinished jobs
  and land on results pinned to an uninterrupted run's.

Distributed execution (API v2.1) is measured by a **fleet scaling A/B**: the
same distinct-source batch through ``MigrationService(workers=fleet)`` over
a 1-worker and a 2-worker ``python -m repro.worker`` fleet on localhost.
The 2-worker run also reports **remote first-event latency** — how long
until the first typed event crosses the socket transport.  The ≥1.5x
scaling gate only fires under ``REPRO_BENCH_SMOKE=1`` on hosts with at
least two cores (on a single core two remote workers just timeslice).

Run with ``PYTHONPATH=src python -m pytest -q -s benchmarks/bench_service.py``;
``REPRO_BENCH_SMOKE=1`` (the CI job) shrinks the batch and asserts the
in-process speedup.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path

from repro import SynthesisConfig, migrate
from repro.api import MigrationJob, MigrationService, RemoteFleet, SynthesisSession
from repro.eval.reporting import render_table
from repro.workloads import get_benchmark, rename_variants

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0", "false")

_ROOT = Path(__file__).resolve().parents[1]
_WORKER_ENV = {**os.environ, "PYTHONPATH": str(_ROOT / "src")}

#: Rename variants derived from the planned target (batch size = variants + 1).
VARIANTS = 4 if SMOKE else 7
#: The acceptance gate for the in-process shared batch.
MIN_SPEEDUP = 1.3

_REPORT_ROWS: list[list] = []


def _jobs() -> list[MigrationJob]:
    benchmark = get_benchmark("coachup")
    targets = [benchmark.target_schema]
    targets.extend(rename_variants(benchmark.target_schema, VARIANTS, base_name="coachup_v2"))
    config = SynthesisConfig()
    return [
        MigrationJob(f"coachup->{target.name}", benchmark.source_program, target, config)
        for target in targets
    ]


def _timed(label: str, run) -> tuple[float, list]:
    started = time.perf_counter()
    results = run()
    elapsed = time.perf_counter() - started
    assert all(result.succeeded for result in results), f"{label}: a job failed"
    _REPORT_ROWS.append([label, len(results), f"{elapsed:.2f}", ""])
    return elapsed, results


def test_service_batch_throughput():
    jobs = _jobs()
    config = jobs[0].config

    sequential_time, sequential_results = _timed(
        "sequential migrate()",
        lambda: [migrate(job.source_program, job.target_schema, config) for job in jobs],
    )
    shared_time, shared_results = _timed(
        "service in-process", lambda: MigrationService().migrate_batch(jobs)
    )
    pooled_time, _ = _timed(
        "service max_workers=4",
        lambda: MigrationService(max_workers=4).migrate_batch(jobs),
    )

    in_process_speedup = sequential_time / max(shared_time, 1e-9)
    pooled_speedup = sequential_time / max(pooled_time, 1e-9)
    _REPORT_ROWS[1][3] = f"{in_process_speedup:.2f}x"
    _REPORT_ROWS[2][3] = f"{pooled_speedup:.2f}x"

    print()
    print(
        render_table(
            ["Mode", "Jobs", "Wall(s)", "Speedup"],
            _REPORT_ROWS,
            title=f"Migration service A/B ({len(jobs)}-job same-source batch)",
        )
    )
    # Evidence that the speedup is sharing, not measurement noise: warm jobs
    # hit the shared source-output cache far more than their cold twins.
    cold_hits = sum(result.cache.source_cache_hits for result in sequential_results[1:])
    warm_hits = sum(result.cache.source_cache_hits for result in shared_results[1:])
    print(f"source-cache hits on jobs 2..N: cold={cold_hits} shared={warm_hits}")
    assert warm_hits > cold_hits

    # Every job must still produce a migrated program in both modes.
    assert all(result.succeeded for result in shared_results)
    assert in_process_speedup >= MIN_SPEEDUP, (
        f"shared-artifact batch speedup {in_process_speedup:.2f}x below the "
        f"{MIN_SPEEDUP}x acceptance floor"
    )


def test_streaming_first_event_latency():
    """First-event latency of live streaming under the queue transport."""
    jobs = _jobs()
    first_event: list[float] = []
    events_total = [0]

    def on_event(_name: str, _event) -> None:
        events_total[0] += 1
        if not first_event:
            first_event.append(time.perf_counter())

    service = MigrationService(max_workers=2, on_event=on_event)
    handles = service.submit_batch(jobs)
    started = time.perf_counter()
    service.run()
    total = time.perf_counter() - started

    assert all(handle.result is not None for handle in handles)
    assert first_event, "pooled service streamed no live events"
    latency = first_event[0] - started
    print()
    print(
        render_table(
            ["Transport", "Jobs", "Events", "FirstEvent(ms)", "Batch(s)"],
            [["queue (max_workers=2)", len(jobs), events_total[0], f"{latency * 1000:.0f}", f"{total:.2f}"]],
            title="Live event streaming: first-event latency",
        )
    )
    # Liveness gate: the first event must arrive while the batch is still
    # running (post-hoc delivery would put it at ~total).  Worker spawn and
    # the first compilation dominate the latency, so allow a wide margin.
    assert latency < 0.9 * total, (
        f"first event arrived at {latency:.2f}s of a {total:.2f}s batch — "
        "streaming is not live"
    )


def test_parallel_session_first_event_latency():
    """First-event latency of the parallel *session* path (API v2).

    A ``SynthesisSession`` over a parallel configuration merges worker event
    streams live: the head attempt's events flow the moment the worker emits
    them.  The gate mirrors the pooled-service one — the first typed event
    must arrive while the run is still going, not after it.
    """
    bench = get_benchmark("Ambler-5")
    config = SynthesisConfig()
    config.verifier_random_sequences = 25
    config.parallel_workers = 2
    first_event: list[float] = []
    events_total = [0]

    def on_event(_event) -> None:
        events_total[0] += 1
        if not first_event:
            first_event.append(time.perf_counter())

    started = time.perf_counter()
    session = SynthesisSession(
        bench.source_program, bench.target_schema, config, on_event=on_event
    )
    result = session.run()
    total = time.perf_counter() - started

    assert result.succeeded
    assert first_event, "parallel session streamed no live events"
    latency = first_event[0] - started
    print()
    print(
        render_table(
            ["Mode", "Attempts", "Events", "FirstEvent(ms)", "Run(s)"],
            [[
                "session parallel_workers=2",
                result.value_correspondences_tried,
                events_total[0],
                f"{latency * 1000:.0f}",
                f"{total:.2f}",
            ]],
            title="Parallel session streaming: first-event latency",
        )
    )
    assert latency < 0.9 * total, (
        f"first event arrived at {latency:.2f}s of a {total:.2f}s run — "
        "the parallel session is not streaming live"
    )


def _spawn_fleet(size: int, prefix: str) -> tuple[RemoteFleet, list[subprocess.Popen]]:
    """A listening fleet plus *size* localhost ``repro.worker`` processes."""
    fleet = RemoteFleet(listen="127.0.0.1:0", min_workers=size)
    workers = [
        subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.worker",
                "--connect",
                fleet.bound_address,
                "--id",
                f"{prefix}{index}",
            ],
            env=_WORKER_ENV,
        )
        for index in range(size)
    ]
    fleet.ensure_started()
    return fleet, workers


def _reap_fleet(fleet: RemoteFleet, workers: list[subprocess.Popen]) -> None:
    fleet.close()
    for worker in workers:
        if worker.poll() is None:
            worker.kill()
        worker.wait(timeout=10)


def test_fleet_scaling_ab():
    """Distributed A/B: one batch over 1-worker and 2-worker remote fleets.

    Same code path, same socket transport, same jobs — only the fleet width
    changes, so the wall-clock ratio is the scaling of distributed dispatch.
    Distinct-source jobs keep the work independent (no cross-job pool
    deltas serializing the batch).
    """
    names = ["Oracle-1", "Ambler-3", "Ambler-4", "MathHotSpot"]
    config = SynthesisConfig()
    config.verifier_random_sequences = 25
    jobs = []
    for name in names:
        bench = get_benchmark(name)
        jobs.append(MigrationJob(name, bench.source_program, bench.target_schema, config))

    walls: dict[int, float] = {}
    first_event_ms: dict[int, float] = {}
    for size in (1, 2):
        fleet, workers = _spawn_fleet(size, f"bench-{size}w-")
        try:
            first_event: list[float] = []

            def on_event(_name: str, _event) -> None:
                if not first_event:
                    first_event.append(time.perf_counter())

            service = MigrationService(workers=fleet, on_event=on_event)
            service.submit_batch(jobs)
            started = time.perf_counter()
            service.run()
            walls[size] = time.perf_counter() - started
            assert all(
                handle.result is not None and handle.result.succeeded
                for handle in service.handles
            )
            assert first_event, f"{size}-worker fleet streamed no live events"
            first_event_ms[size] = (first_event[0] - started) * 1000
        finally:
            _reap_fleet(fleet, workers)

    scaling = walls[1] / max(walls[2], 1e-9)
    print()
    print(
        render_table(
            ["Fleet", "Jobs", "Wall(s)", "FirstEvent(ms)", "Scaling"],
            [
                ["1 remote worker", len(jobs), f"{walls[1]:.2f}", f"{first_event_ms[1]:.0f}", ""],
                ["2 remote workers", len(jobs), f"{walls[2]:.2f}", f"{first_event_ms[2]:.0f}", f"{scaling:.2f}x"],
            ],
            title="Distributed fleet scaling (socket transport, localhost)",
        )
    )
    if SMOKE and (os.cpu_count() or 1) >= 2:
        assert scaling >= 1.5, (
            f"2-worker fleet scaled only {scaling:.2f}x over 1 worker "
            "(>=1.5x gate on multi-core hosts)"
        )


def test_resume_interrupted_five_job_batch(tmp_path):
    """Interrupt a 5-job stored batch after 2 jobs; resume must finish it.

    Distinct source programs keep the jobs observably independent, so the
    resumed batch's results are pinned to an uninterrupted run's.
    """
    names = ["Oracle-1", "Ambler-3", "Ambler-4", "MathHotSpot", "coachup"]
    config = SynthesisConfig()
    config.verifier_random_sequences = 25

    def jobs_for(selection):
        jobs = []
        for name in selection:
            bench = get_benchmark(name)
            jobs.append(MigrationJob(name, bench.source_program, bench.target_schema, config))
        return jobs

    store = str(tmp_path / "batch.jsonl")
    # Generation 1 settles two jobs; generation 2 enqueues three more and is
    # "killed" before draining them (exactly what a crashed server leaves).
    first = MigrationService(job_store=store)
    first.submit_batch(jobs_for(names[:2]))
    first.run()
    interrupted = MigrationService(job_store=store)
    interrupted.submit_batch(jobs_for(names[2:]))
    del interrupted

    ran: set[str] = set()
    resumed = MigrationService.resume(store, on_event=lambda name, _e: ran.add(name))
    resumed.run()
    assert ran == set(names[2:]), f"resume reran settled jobs: {sorted(ran)}"

    uninterrupted = MigrationService()
    uninterrupted.submit_batch(jobs_for(names))
    uninterrupted.run()
    reference = {handle.job.name: handle.to_dict() for handle in uninterrupted.handles}
    responses = [handle.to_dict() for handle in resumed.handles]
    for response in responses:
        expected = reference[response["job"]]
        assert response["status"] == expected["status"] == "done", response["job"]
        assert response["result"]["attempts"] == expected["result"]["attempts"]
        assert response["result"]["program"] == expected["result"]["program"]
    print()
    print(
        render_table(
            ["Phase", "Jobs", "Ran"],
            [
                ["before interruption", 2, 2],
                ["after resume", len(names), len(ran)],
            ],
            title="Resumable batch: interrupted 5-job run",
        )
    )
