"""Micro-benchmarks of the pipeline components (not a table of the paper).

These isolate the cost of the individual stages — value-correspondence
enumeration, sketch generation, SAT solving, bounded testing — on the paper's
running example, which is useful when profiling regressions in the substrates.
"""

from __future__ import annotations

import pytest

from repro.completion import SketchCompleter, SketchEncoder, instantiate
from repro.correspondence import ValueCorrespondenceEnumerator
from repro.equivalence import BoundedTester
from repro.sat import CNF, SatSolver, exactly_one
from repro.sketchgen import SketchGenerator
from repro.workloads import get_benchmark


@pytest.fixture(scope="module")
def running_example():
    bench = get_benchmark("Oracle-2")
    source = bench.source_program
    target = bench.target_schema
    enumerator = ValueCorrespondenceEnumerator(source, target)
    vc = enumerator.next_value_corr().correspondence
    sketch = SketchGenerator(source, target).generate(vc)
    return source, target, vc, sketch


def test_bench_value_correspondence_enumeration(benchmark):
    bench = get_benchmark("Oracle-2")

    def run():
        enumerator = ValueCorrespondenceEnumerator(bench.source_program, bench.target_schema)
        return enumerator.next_value_corr()

    assert benchmark(run) is not None


def test_bench_sketch_generation(benchmark, running_example):
    source, target, vc, _ = running_example
    generator = SketchGenerator(source, target)
    sketch = benchmark(generator.generate, vc)
    assert sketch.num_holes() > 0


def test_bench_sketch_encoding(benchmark, running_example):
    _, _, _, sketch = running_example
    encoding = benchmark(lambda: SketchEncoder(sketch).encode())
    assert encoding.cnf.num_clauses > 0


def test_bench_sat_model_enumeration(benchmark):
    def run():
        cnf = CNF()
        groups = [[cnf.new_variable() for _ in range(6)] for _ in range(12)]
        for group in groups:
            exactly_one(cnf, group)
        solver = SatSolver()
        solver.add_cnf(cnf)
        models = 0
        while models < 50:
            result = solver.solve()
            if not result.is_sat:
                break
            models += 1
            solver.add_clause([-g[0] if result.model[g[0]] else g[0] for g in groups])
        return models

    assert benchmark(run) == 50


def test_bench_bounded_testing(benchmark, running_example):
    source, _, _, sketch = running_example
    tester = BoundedTester(source)
    assignment = {hole.index: 0 for hole in sketch.holes()}
    candidate = instantiate(sketch, assignment)
    benchmark(tester.find_failing_input, candidate)


def test_bench_sketch_completion(benchmark, running_example):
    source, _, _, sketch = running_example

    def run():
        return SketchCompleter(source).complete(sketch)

    result = benchmark.pedantic(run, iterations=1, rounds=1)
    assert result.succeeded
