"""Table 3 — symbolic enumerative search (no MFI pruning) vs Migrator.

Measures the enumerative baseline, which shares the SAT encoding and tester
with Migrator but blocks only one model per failing candidate.  On the easy
benchmarks it matches Migrator; on the harder ones it needs orders of
magnitude more iterations or hits its timeout, reproducing the shape of the
paper's Table 3.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import BASELINE_TIMEOUT, baseline_selection
from repro.core import SynthesisConfig, Synthesizer
from repro.workloads import get_benchmark


def _baseline_config() -> SynthesisConfig:
    config = SynthesisConfig()
    config.completion_strategy = "enumerative"
    config.final_verification = False
    config.time_limit = BASELINE_TIMEOUT
    config.sketch_time_limit = BASELINE_TIMEOUT
    return config


@pytest.mark.parametrize("name", baseline_selection())
def test_table3_enumerative_baseline(benchmark, name):
    bench = get_benchmark(name)

    def run():
        started = time.perf_counter()
        result = Synthesizer(_baseline_config()).synthesize(
            bench.source_program, bench.target_schema
        )
        return result, time.perf_counter() - started

    (result, elapsed) = benchmark.pedantic(run, iterations=1, rounds=1)
    benchmark.extra_info["benchmark"] = name
    benchmark.extra_info["succeeded"] = result.succeeded
    benchmark.extra_info["timed_out"] = not result.succeeded and elapsed >= BASELINE_TIMEOUT * 0.9
    benchmark.extra_info["iterations"] = result.iterations
